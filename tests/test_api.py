"""Tests for the :mod:`repro.api` facade: RunSpec, Session, RunResult."""

import json

import numpy as np
import pytest

from repro.api import (
    ClusterSpec,
    CompressionSpec,
    ExecutionSpec,
    OptimizerSpec,
    RobustnessSpec,
    RunResult,
    RunSpec,
    Session,
)
from repro.api import run as api_run
from repro.cli import spec_from_argv


def smoke_spec(**overrides) -> RunSpec:
    """A tiny, fast, benign synchronous spec."""
    fields = dict(
        workload="lm",
        scale="smoke",
        seed=0,
        cluster=ClusterSpec(n_workers=2),
        optimizer=OptimizerSpec(epochs=1, max_iterations_per_epoch=2, batch_size=8),
        compression=CompressionSpec(sparsifier="deft", density=0.05),
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestResolve:
    def test_resolve_fills_workload_presets(self):
        resolved = RunSpec(workload="lm").resolve()
        assert resolved.compression.density == 0.001
        assert resolved.optimizer.lr == 0.5
        assert resolved.optimizer.epochs == 2
        assert resolved.optimizer.batch_size == 8
        assert resolved.robustness.aggregator == "mean"

    def test_resolve_does_not_mutate_the_original(self):
        spec = RunSpec(workload="cv")
        spec.resolve()
        assert spec.compression.density is None
        assert spec.robustness.aggregator is None

    def test_explicit_values_survive_resolution(self):
        spec = smoke_spec(robustness=RobustnessSpec(aggregator="median"))
        resolved = spec.resolve()
        assert resolved.compression.density == 0.05
        assert resolved.robustness.aggregator == "median"

    def test_async_resolves_staleness_weighted_default(self):
        resolved = smoke_spec(execution=ExecutionSpec(model="async_bsp")).resolve()
        assert resolved.robustness.aggregator == "staleness_weighted_mean"

    def test_async_explicit_mean_is_honoured(self):
        resolved = smoke_spec(
            execution=ExecutionSpec(model="async_bsp"),
            robustness=RobustnessSpec(aggregator="mean"),
        ).resolve()
        assert resolved.robustness.aggregator == "mean"

    def test_resolving_twice_is_idempotent(self):
        once = smoke_spec().resolve()
        assert once.resolve() == once


class TestTrainingConfigDefaultAggregator:
    """The layering fix: the default lives in config resolution, so a direct
    TrainingConfig caller agrees with the runner and the CLI."""

    def test_direct_config_gets_staleness_weighted_under_async(self):
        from repro.training.trainer import TrainingConfig

        assert TrainingConfig(execution="async_bsp").aggregator == "staleness_weighted_mean"

    def test_direct_config_gets_mean_elsewhere(self):
        from repro.training.trainer import TrainingConfig

        assert TrainingConfig().aggregator == "mean"
        assert TrainingConfig(execution="local_sgd").aggregator == "mean"

    def test_explicit_choice_always_honoured(self):
        from repro.training.trainer import TrainingConfig

        assert TrainingConfig(execution="async_bsp", aggregator="mean").aggregator == "mean"

    def test_trainer_metadata_agrees(self, smoke_lm_task):
        from repro.training.trainer import DistributedTrainer, TrainingConfig
        from repro.sparsifiers import build_sparsifier

        config = TrainingConfig(
            n_workers=2, batch_size=8, epochs=1, max_iterations_per_epoch=2,
            evaluate_each_epoch=False, execution="async_bsp",
        )
        trainer = DistributedTrainer(
            smoke_lm_task, build_sparsifier("deft", 0.05), config
        )
        result = trainer.train()
        assert result.logger.metadata["aggregator"] == "staleness_weighted_mean"


class TestRoundTrips:
    def spec_with_everything(self) -> RunSpec:
        return RunSpec(
            workload="lm",
            scale="smoke",
            seed=7,
            cluster=ClusterSpec(n_workers=4, straggler_profile="lognormal",
                                base_compute_seconds=0.01),
            optimizer=OptimizerSpec(lr=0.3, batch_size=8, epochs=1,
                                    max_iterations_per_epoch=3,
                                    evaluate_each_epoch=False),
            compression=CompressionSpec(sparsifier="dgc", density=0.05,
                                        kwargs={"sample_ratio": 0.2, "refine": False}),
            robustness=RobustnessSpec(aggregator="centered_clipping",
                                      aggregator_kwargs={"tau": 0.5},
                                      attack="gaussian_noise",
                                      attack_kwargs={"std": 0.2},
                                      n_byzantine=1),
            execution=ExecutionSpec(model="local_sgd", local_steps=2),
        )

    def test_dict_round_trip(self):
        spec = self.spec_with_everything()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self.spec_with_everything()
        rebuilt = RunSpec.from_json(spec.to_json(indent=2))
        assert rebuilt == spec
        assert rebuilt.resolve() == spec.resolve()

    def test_from_dict_tolerates_missing_sections(self):
        spec = RunSpec.from_dict({"workload": "cv", "cluster": {"n_workers": 8}})
        assert spec.workload == "cv"
        assert spec.cluster.n_workers == 8
        assert spec.optimizer == OptimizerSpec()

    def test_argv_round_trip(self):
        spec = self.spec_with_everything()
        argv = spec.to_argv()
        assert argv[0] == "train"
        rebuilt = spec_from_argv(argv)
        assert rebuilt.resolve() == spec.resolve()

    def test_argv_round_trip_with_robust_norms(self):
        spec = smoke_spec(
            compression=CompressionSpec(sparsifier="deft", density=0.05,
                                        kwargs={"robust_norms": True}),
        )
        rebuilt = spec_from_argv(spec.to_argv())
        assert rebuilt.resolve() == spec.resolve()
        assert rebuilt.compression.kwargs["robust_norms"] is True

    def test_argv_round_trip_of_defaults(self):
        spec = RunSpec()
        assert spec_from_argv(spec.to_argv()).resolve() == spec.resolve()


class TestValidationMatrix:
    """The capability matrix covers every refusal the trainer enforces."""

    EXECUTIONS = ("synchronous", "local_sgd", "async_bsp", "elastic")
    AGGREGATORS = (
        "mean", "median", "trimmed_mean", "krum", "multi_krum",
        "geometric_median", "centered_clipping", "staleness_weighted_mean",
    )
    ATTACKS = ("none", "sign_flip", "gaussian_noise", "label_flip", "alie")

    @staticmethod
    def expected_refusal(execution: str, attack: str) -> bool:
        colluding = attack == "alie"
        corrupts_data = attack == "label_flip"
        if attack == "none":
            return False
        if execution == "async_bsp" and colluding:
            return True
        if execution == "elastic" and not corrupts_data:
            return True
        return False

    def test_full_matrix(self):
        """Every (execution x aggregator x attack) combination validates
        exactly when the schedules' _post_bind hooks would accept it."""
        for execution in self.EXECUTIONS:
            for aggregator in self.AGGREGATORS:
                for attack in self.ATTACKS:
                    spec = smoke_spec(
                        cluster=ClusterSpec(n_workers=4),
                        robustness=RobustnessSpec(
                            aggregator=aggregator,
                            attack=attack,
                            n_byzantine=0 if attack == "none" else 1,
                        ),
                        execution=ExecutionSpec(model=execution),
                    )
                    if self.expected_refusal(execution, attack):
                        with pytest.raises(ValueError):
                            spec.validate()
                    else:
                        spec.validate()

    def test_colluding_attack_message_matches_trainer(self):
        spec = smoke_spec(
            cluster=ClusterSpec(n_workers=4),
            robustness=RobustnessSpec(attack="alie", n_byzantine=1),
            execution=ExecutionSpec(model="async_bsp"),
        )
        with pytest.raises(ValueError, match="synchronized group view"):
            spec.validate()

    def test_gradient_attack_under_elastic_message_matches_trainer(self):
        spec = smoke_spec(
            cluster=ClusterSpec(n_workers=4),
            robustness=RobustnessSpec(attack="sign_flip", n_byzantine=1),
            execution=ExecutionSpec(model="elastic"),
        )
        with pytest.raises(ValueError, match="accumulators"):
            spec.validate()

    def test_momentum_under_elastic_rejected(self):
        spec = smoke_spec(
            optimizer=OptimizerSpec(momentum=0.9, epochs=1),
            execution=ExecutionSpec(model="elastic"),
        )
        with pytest.raises(ValueError, match="momentum"):
            spec.validate()

    def test_all_byzantine_rejected(self):
        spec = smoke_spec(
            cluster=ClusterSpec(n_workers=2),
            robustness=RobustnessSpec(attack="sign_flip", n_byzantine=2),
        )
        with pytest.raises(ValueError, match="benign worker"):
            spec.validate()

    def test_unknown_component_names_rejected(self):
        with pytest.raises(KeyError, match="unknown sparsifier"):
            smoke_spec(compression=CompressionSpec(sparsifier="zzz")).validate()
        with pytest.raises(KeyError, match="unknown aggregator"):
            smoke_spec(robustness=RobustnessSpec(aggregator="zzz")).validate()
        with pytest.raises(KeyError, match="unknown attack"):
            smoke_spec(robustness=RobustnessSpec(attack="zzz")).validate()
        with pytest.raises(KeyError, match="unknown execution"):
            smoke_spec(execution=ExecutionSpec(model="zzz")).validate()

    def test_unknown_straggler_profile_rejected(self):
        spec = smoke_spec(cluster=ClusterSpec(straggler_profile="zzz"))
        with pytest.raises(ValueError, match="straggler profile"):
            spec.validate()

    def test_unknown_component_kwargs_rejected(self):
        spec = smoke_spec(
            compression=CompressionSpec(sparsifier="deft", density=0.05,
                                        kwargs={"bogus": 1}),
        )
        with pytest.raises(ValueError, match="bogus"):
            spec.validate()

    def test_robust_norms_rejected_for_non_deft(self):
        spec = smoke_spec(
            compression=CompressionSpec(sparsifier="topk", density=0.05,
                                        kwargs={"robust_norms": True}),
        )
        with pytest.raises(ValueError, match="robust-norms"):
            spec.validate()

    def test_validation_fires_before_any_construction(self):
        """Session.run must raise on an invalid spec without building a task."""
        session = Session()
        with pytest.raises(ValueError):
            session.run(smoke_spec(
                cluster=ClusterSpec(n_workers=4),
                robustness=RobustnessSpec(attack="alie", n_byzantine=1),
                execution=ExecutionSpec(model="async_bsp"),
            ))
        assert session._tasks == {}


class TestSessionRun:
    def test_run_returns_structured_result(self):
        result = api_run(smoke_spec())
        assert isinstance(result, RunResult)
        assert result.iterations_run == 2
        assert result.spec.robustness.aggregator == "mean"
        assert result.traffic["total_sent_elements"] > 0
        assert "indices" in result.traffic["by_tag"]
        assert result.estimated_wallclock > 0

    def test_result_to_json_round_trips_spec(self):
        result = api_run(smoke_spec())
        payload = json.loads(result.to_json())
        assert RunSpec.from_dict(payload["spec"]) == result.spec
        assert payload["iterations_run"] == 2
        assert set(payload["final_metrics"]) == set(result.final_metrics)

    def test_bit_identical_to_direct_trainer(self, smoke_lm_task):
        """Acceptance criterion: the facade adds nothing to the math."""
        from repro.sparsifiers import build_sparsifier
        from repro.training.trainer import DistributedTrainer, TrainingConfig

        config = TrainingConfig(
            n_workers=2, batch_size=8, epochs=1, lr=0.2, seed=3,
            max_iterations_per_epoch=4,
        )
        direct = DistributedTrainer(
            smoke_lm_task, build_sparsifier("deft", 0.05), config
        ).train()

        via_api = Session().run(
            smoke_spec(
                seed=3,
                optimizer=OptimizerSpec(lr=0.2, batch_size=8, epochs=1,
                                        max_iterations_per_epoch=4),
            ),
            task=smoke_lm_task,
        )
        np.testing.assert_array_equal(
            direct.logger.series("loss").values, via_api.series("loss").values
        )
        assert direct.final_metrics == via_api.final_metrics
        assert direct.estimated_wallclock == via_api.estimated_wallclock

    def test_session_caches_tasks(self):
        session = Session()
        first = session.task_for("lm", "smoke", 0)
        assert session.task_for("lm", "smoke", 0) is first
        assert session.task_for("lm", "smoke", 1) is not first

    def test_run_result_delegates_training_surface(self):
        result = api_run(smoke_spec())
        assert result.mean_density() == result.training.mean_density()
        assert result.final_metric("perplexity") == result.training.final_metric("perplexity")
        assert result.timing is result.training.timing
        assert list(result.series("loss").values) == list(result.training.series("loss").values)

    def test_runner_routes_through_facade(self):
        """The legacy keyword helper now returns the structured result."""
        from repro.experiments.runner import run_training

        result = run_training(
            "lm", "deft", density=0.05, n_workers=2, epochs=1,
            max_iterations_per_epoch=2,
        )
        assert isinstance(result, RunResult)
        assert result.spec.compression.sparsifier == "deft"
