"""Tests for the synthetic dataset generators."""

import numpy as np

from repro.data.synthetic_images import SyntheticImageConfig, SyntheticImageDataset, make_image_classification
from repro.data.synthetic_ratings import make_implicit_feedback
from repro.data.synthetic_text import SyntheticTextConfig, SyntheticTextCorpus, make_language_modeling


class TestSyntheticImages:
    def test_shapes_and_dtypes(self):
        train, test = make_image_classification(n_train=64, n_test=16, image_size=8, seed=0)
        assert train.images.shape == (64, 3, 8, 8)
        assert train.images.dtype == np.float32
        assert train.labels.shape == (64,)
        assert train.labels.dtype == np.int64
        assert len(test) == 16

    def test_labels_in_range(self):
        train, _ = make_image_classification(n_train=64, num_classes=7, seed=0)
        assert train.labels.min() >= 0 and train.labels.max() < 7

    def test_reproducible(self):
        a, _ = make_image_classification(n_train=32, seed=3)
        b, _ = make_image_classification(n_train=32, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_and_test_differ(self):
        train, test = make_image_classification(n_train=32, n_test=32, seed=3)
        assert not np.array_equal(train.images[:32], test.images)

    def test_classes_are_separable_from_prototypes(self):
        """A nearest-prototype classifier should beat chance by a wide margin
        -- otherwise convergence comparisons between sparsifiers would be
        meaningless noise."""
        train, _ = make_image_classification(n_train=256, num_classes=5, image_size=8, noise_std=0.5, seed=0)
        prototypes = train.prototypes.reshape(5, -1)
        flat = train.images.reshape(len(train), -1)
        distances = ((flat[:, None, :] - prototypes[None, :, :]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == train.labels).mean()
        assert accuracy > 0.6

    def test_num_classes_property(self):
        dataset = SyntheticImageDataset(SyntheticImageConfig(n_train=16, num_classes=3), train=True)
        assert dataset.num_classes == 3


class TestSyntheticText:
    def test_shapes(self):
        train, test = make_language_modeling(vocab_size=50, train_tokens=1000, test_tokens=300, seq_len=10, seed=0)
        assert train.inputs.shape[1] == 10
        assert train.targets.shape == train.inputs.shape
        assert len(test) > 0

    def test_targets_are_shifted_inputs(self):
        train, _ = make_language_modeling(vocab_size=50, train_tokens=500, seq_len=5, seed=1)
        # Within a sequence, target[t] must equal input[t+1].
        np.testing.assert_array_equal(train.inputs[0, 1:], train.targets[0, :-1])

    def test_tokens_within_vocab(self):
        train, _ = make_language_modeling(vocab_size=37, train_tokens=500, seed=2)
        assert train.inputs.max() < 37 and train.inputs.min() >= 0

    def test_reproducible(self):
        a, _ = make_language_modeling(train_tokens=500, seed=5)
        b, _ = make_language_modeling(train_tokens=500, seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_unigram_distribution_is_heavy_tailed(self):
        """Zipfian stationary distribution: the most frequent token should be
        much more frequent than the median token."""
        train, _ = make_language_modeling(vocab_size=100, train_tokens=20000, seed=0)
        counts = np.bincount(train.inputs.reshape(-1), minlength=100)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 5 * max(counts[50], 1)

    def test_transition_matrix_is_row_stochastic(self):
        corpus = SyntheticTextCorpus(SyntheticTextConfig(vocab_size=30, train_tokens=300, seed=0), train=True)
        np.testing.assert_allclose(corpus.transition_matrix.sum(axis=1), np.ones(30), atol=1e-9)

    def test_markov_structure_is_learnable(self):
        """The bigram predictability must beat the unigram baseline, otherwise
        an LSTM could not reduce perplexity below the unigram entropy."""
        train, _ = make_language_modeling(vocab_size=40, train_tokens=20000, seed=0)
        stream = np.concatenate([train.inputs.reshape(-1)[:1], train.targets.reshape(-1)])
        pairs = np.stack([stream[:-1], stream[1:]], axis=1)
        bigram = np.zeros((40, 40))
        np.add.at(bigram, (pairs[:, 0], pairs[:, 1]), 1)
        unigram = bigram.sum(axis=0)
        unigram_acc = unigram.max() / unigram.sum()
        bigram_acc = bigram.max(axis=1).sum() / bigram.sum()
        assert bigram_acc > unigram_acc + 0.05


class TestSyntheticRatings:
    def test_triples_have_consistent_shapes(self):
        ds = make_implicit_feedback(num_users=20, num_items=40, interactions_per_user=6, seed=0)
        assert ds.users.shape == ds.items.shape == ds.labels.shape
        assert set(np.unique(ds.labels)) <= {0.0, 1.0}

    def test_negative_sampling_ratio(self):
        ds = make_implicit_feedback(num_users=10, num_items=50, interactions_per_user=6, negatives_per_positive=4, seed=0)
        positives = (ds.labels == 1).sum()
        negatives = (ds.labels == 0).sum()
        assert negatives == 4 * positives

    def test_eval_candidates_contain_held_out_positive(self):
        ds = make_implicit_feedback(num_users=15, num_items=40, seed=1)
        for user in range(15):
            assert ds.eval_positives[user] in ds.eval_candidates[user]

    def test_eval_candidates_have_expected_size(self):
        ds = make_implicit_feedback(num_users=10, num_items=200, seed=1)
        assert len(ds.eval_candidates[0]) == 100  # 1 positive + 99 negatives

    def test_indices_in_range(self):
        ds = make_implicit_feedback(num_users=12, num_items=33, seed=2)
        assert ds.users.max() < 12 and ds.items.max() < 33

    def test_held_out_positive_not_in_training_triples(self):
        ds = make_implicit_feedback(num_users=10, num_items=60, seed=3)
        for user in range(10):
            positive = ds.eval_positives[user]
            mask = (ds.users == user) & (ds.items == positive) & (ds.labels == 1)
            assert mask.sum() == 0

    def test_reproducible(self):
        a = make_implicit_feedback(num_users=8, num_items=20, seed=4)
        b = make_implicit_feedback(num_users=8, num_items=20, seed=4)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)
