"""Tests for conv2d / pooling and their backward passes."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.conv_ops import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)
from tests.test_tensor_autograd import check_gradient

RNG = np.random.default_rng(21)


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (8, 1, 1, 0, 8), (16, 3, 2, 1, 8), (5, 3, 1, 0, 3)],
    )
    def test_formula(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected


class TestIm2Col:
    def test_shape(self):
        x = RNG.standard_normal((2, 3, 8, 8))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> (the two must be adjoint maps)."""
        x = RNG.standard_normal((1, 2, 6, 6))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        y = RNG.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), stride=1, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestConv2d:
    def test_matches_direct_convolution(self):
        x = RNG.standard_normal((1, 1, 5, 5))
        w = RNG.standard_normal((1, 1, 3, 3))
        out = conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64)).numpy()
        # direct computation with no padding, stride 1
        expected = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                expected[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_output_shape_with_stride_and_padding(self):
        x = Tensor(RNG.standard_normal((2, 3, 8, 8)), dtype=np.float64)
        w = Tensor(RNG.standard_normal((5, 3, 3, 3)), dtype=np.float64)
        out = conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), dtype=np.float64)
        w = Tensor(np.zeros((2, 1, 3, 3)), dtype=np.float64)
        b = Tensor(np.array([1.5, -2.0]), dtype=np.float64)
        out = conv2d(x, w, b, padding=1).numpy()
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_gradients(self):
        x = RNG.standard_normal((2, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3)) * 0.3
        b = RNG.standard_normal(3) * 0.3
        check_gradient(
            lambda t: (conv2d(t[0], t[1], t[2], stride=1, padding=1) ** 2).mean(),
            [x, w, b],
            tolerance=1e-5,
        )

    def test_gradients_with_stride(self):
        x = RNG.standard_normal((1, 2, 6, 6))
        w = RNG.standard_normal((2, 2, 3, 3)) * 0.3
        check_gradient(
            lambda t: (conv2d(t[0], t[1], stride=2, padding=1) ** 2).mean(),
            [x, w],
            tolerance=1e-5,
        )


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x, dtype=np.float64), 2).numpy()
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x, dtype=np.float64), 2).numpy()
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        check_gradient(lambda t: (max_pool2d(t[0], 2) ** 2).sum(), [x], tolerance=1e-5)

    def test_avg_pool_gradient(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        check_gradient(lambda t: (avg_pool2d(t[0], 2) ** 2).sum(), [x], tolerance=1e-5)

    def test_global_avg_pool(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x, dtype=np.float64)).numpy()
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), atol=1e-7)

    def test_indivisible_spatial_dims_raise(self):
        x = Tensor(np.zeros((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            max_pool2d(x, 2)

    def test_overlapping_pooling_not_supported(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        with pytest.raises(NotImplementedError):
            max_pool2d(x, 2, stride=1)
