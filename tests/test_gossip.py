"""Tests for the server-less gossip execution schedule."""

import numpy as np
import pytest

from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig


def run_gossip(task, sparsifier="deft", density=0.05, n_workers=4, iterations=5,
               epochs=1, seed=0, lr=0.2, **config_kwargs):
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=epochs,
        lr=lr,
        seed=seed,
        max_iterations_per_epoch=iterations,
        evaluate_each_epoch=False,
        execution="gossip",
        **config_kwargs,
    )
    trainer = DistributedTrainer(task, build_sparsifier(sparsifier, density), config)
    return trainer, trainer.train()


class TestGossipSchedule:
    def test_trains_with_zero_server_and_collective_traffic(self, smoke_lm_task):
        """The acceptance criterion: a gossip run records only neighbour
        sends -- no push/pull, no allgather/allreduce/broadcast/gather."""
        trainer, result = run_gossip(smoke_lm_task)
        ops = {record.op for record in trainer.backend.meter.records}
        assert ops == {"send"}
        assert trainer.backend.meter.by_tag() == {
            "gossip": trainer.backend.meter.total_sent(op="send")
        }
        assert result.iterations_run == 5
        assert np.isfinite(result.logger.series("loss").values).all()

    def test_defaults_to_ring_topology(self, smoke_lm_task):
        trainer, result = run_gossip(smoke_lm_task)
        assert trainer.config.topology == "ring"
        assert trainer.topology is not None
        assert trainer.topology.name == "ring"
        assert result.logger.metadata["topology"] == "ring"
        assert result.logger.metadata["server_rank"] is None

    def test_send_traffic_covers_both_ring_directions(self, smoke_lm_task):
        trainer, _ = run_gossip(smoke_lm_task, n_workers=4, iterations=2)
        sends = [r for r in trainer.backend.meter.records if r.op == "send"]
        directed_edges = {(r.src, r.dst) for r in sends}
        # A 4-ring has 4 edges, each exercised in both directions.
        assert len(directed_edges) == 8
        assert all((dst, src) in directed_edges for src, dst in directed_edges)

    def test_bit_reproducible_across_runs_same_seed(self, smoke_lm_task):
        _, a = run_gossip(smoke_lm_task, seed=7)
        _, b = run_gossip(smoke_lm_task, seed=7)
        np.testing.assert_array_equal(
            a.logger.series("loss").values, b.logger.series("loss").values
        )
        assert a.estimated_wallclock == b.estimated_wallclock

    def test_seed_changes_trajectory(self, smoke_lm_task):
        _, a = run_gossip(smoke_lm_task, seed=7)
        _, c = run_gossip(smoke_lm_task, seed=8)
        assert not np.allclose(
            a.logger.series("loss").values, c.logger.series("loss").values
        )

    def test_loss_decreases_dense(self, smoke_lm_task):
        _, result = run_gossip(
            smoke_lm_task, sparsifier="dense", density=1.0, iterations=20, lr=0.5
        )
        losses = result.logger.series("loss").values
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
        assert np.isfinite(losses).all()

    def test_error_feedback_engaged(self, smoke_lm_task):
        """Sparse gossip leaves unsent accumulator mass in the memories."""
        trainer, result = run_gossip(smoke_lm_task, density=0.01)
        assert result.logger.series("error").values[-1] > 0.0

    def test_star_topology_also_supported(self, smoke_lm_task):
        trainer, result = run_gossip(smoke_lm_task, topology="star")
        assert trainer.topology.name == "star"
        assert {r.op for r in trainer.backend.meter.records} == {"send"}
        # The hub has 3 neighbours, the leaves 1: the busiest inbox prices
        # the round, so the star round costs more than a 2-neighbour ring's.
        _, ring = run_gossip(smoke_lm_task, topology="ring")
        assert result.estimated_wallclock > ring.estimated_wallclock

    def test_final_model_is_worker_consensus(self, smoke_lm_task):
        """Evaluation uses the average of the local parameter copies, so
        the shared model must be finite and actually trained."""
        trainer, result = run_gossip(smoke_lm_task, iterations=8)
        from repro.execution.base import flatten_parameters

        params = flatten_parameters(trainer.model)
        assert np.isfinite(params).all()
        assert result.final_metrics["loss"] > 0

    def test_per_rank_gradient_attack_bites(self, smoke_lm_task):
        _, benign = run_gossip(smoke_lm_task, seed=2)
        _, attacked = run_gossip(
            smoke_lm_task, seed=2, attack="sign_flip", n_byzantine=1
        )
        assert not np.allclose(
            benign.logger.series("loss").values, attacked.logger.series("loss").values
        )


class TestGossipRefusals:
    def test_flat_topology_refused(self, smoke_lm_task):
        with pytest.raises(ValueError, match="topology edges"):
            run_gossip(smoke_lm_task, topology="flat")

    def test_server_rank_refused(self, smoke_lm_task):
        with pytest.raises(ValueError, match="no parameter server"):
            run_gossip(smoke_lm_task, topology="ring", server_rank=0)

    def test_non_mean_aggregator_refused(self, smoke_lm_task):
        with pytest.raises(ValueError, match="silently ignored"):
            run_gossip(smoke_lm_task, aggregator="krum")

    def test_explicit_mean_accepted(self, smoke_lm_task):
        _, result = run_gossip(smoke_lm_task, aggregator="mean", iterations=2)
        assert result.iterations_run == 2

    def test_momentum_refused(self, smoke_lm_task):
        with pytest.raises(ValueError, match="momentum"):
            run_gossip(smoke_lm_task, momentum=0.9)

    def test_runspec_validation_agrees(self):
        from repro.api import ClusterSpec, ExecutionSpec, RobustnessSpec, RunSpec

        spec = RunSpec(
            cluster=ClusterSpec(n_workers=4, topology="flat"),
            execution=ExecutionSpec(model="gossip"),
        )
        with pytest.raises(ValueError, match="topology edges"):
            spec.validate()
        defaulted = RunSpec(execution=ExecutionSpec(model="gossip")).resolve()
        assert defaulted.cluster.topology == "ring"
        assert defaulted.robustness.aggregator == "mean"
        with pytest.raises(ValueError, match="silently ignored"):
            RunSpec(
                execution=ExecutionSpec(model="gossip"),
                robustness=RobustnessSpec(aggregator="median"),
            ).validate()


class TestGossipThroughFacades:
    def test_cli_run_gossip(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--execution", "gossip", "--workers", "4",
            "--epochs", "1", "--max-iterations-per-epoch", "2",
            "--no-eval-each-epoch",
        ]) == 0
        out = capsys.readouterr().out
        assert "execution=gossip" in out
        assert "estimated wall-clock" in out

    def test_cli_refuses_gossip_with_server_rank(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--execution", "gossip", "--server-rank", "0",
        ]) == 2
        assert "no parameter server" in capsys.readouterr().err

    def test_argv_round_trip_carries_topology(self):
        from repro.api import ExecutionSpec, RunSpec
        from repro.cli import spec_from_argv

        spec = RunSpec(execution=ExecutionSpec(model="gossip"))
        argv = spec.to_argv()
        assert "--topology" in argv
        assert spec_from_argv(argv).resolve() == spec.resolve()

    def test_gossip_through_session_reports_traffic(self, smoke_lm_task):
        from repro.api import (
            CompressionSpec,
            ExecutionSpec,
            OptimizerSpec,
            RunSpec,
            Session,
        )

        spec = RunSpec(
            workload="lm",
            optimizer=OptimizerSpec(
                lr=0.2, batch_size=8, epochs=1,
                max_iterations_per_epoch=2, evaluate_each_epoch=False,
            ),
            compression=CompressionSpec(sparsifier="deft", density=0.05),
            execution=ExecutionSpec(model="gossip"),
        )
        result = Session().run(spec, task=smoke_lm_task)
        assert set(result.traffic["by_tag"]) == {"gossip"}
        assert result.estimated_wallclock > 0
