"""Integration tests: trainer + aggregators + attacks (robustness subsystem)."""

import numpy as np
import pytest

from repro.experiments import robustness_grid
from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig


def run_short(
    task,
    sparsifier_name="deft",
    density=0.05,
    n_workers=2,
    iterations=3,
    lr=0.2,
    seed=0,
    sparsifier_kwargs=None,
    **config_kwargs,
):
    sparsifier = build_sparsifier(sparsifier_name, density, **(sparsifier_kwargs or {}))
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=1,
        lr=lr,
        seed=seed,
        max_iterations_per_epoch=iterations,
        evaluate_each_epoch=False,
        **config_kwargs,
    )
    trainer = DistributedTrainer(task, sparsifier, config)
    result = trainer.train()
    return trainer, result


class TestBenignEquivalence:
    def test_explicit_mean_none_matches_defaults_bitwise(self, smoke_lm_task):
        """aggregator='mean' + attack='none' must reproduce the default
        (Algorithm 1) trainer output bit-for-bit."""
        _, default = run_short(smoke_lm_task, iterations=4)
        _, explicit = run_short(smoke_lm_task, iterations=4, aggregator="mean", attack="none")
        np.testing.assert_array_equal(
            default.logger.series("loss").values, explicit.logger.series("loss").values
        )
        np.testing.assert_array_equal(
            default.logger.series("error").values, explicit.logger.series("error").values
        )

    def test_gather_path_median_of_two_equals_allreduce_mean(self, smoke_lm_task):
        """With two workers the coordinate-wise median is the mean, so the
        gather-based path must reproduce the all-reduce path numerically."""
        _, mean = run_short(smoke_lm_task, n_workers=2, iterations=4, aggregator="mean")
        _, median = run_short(smoke_lm_task, n_workers=2, iterations=4, aggregator="median")
        np.testing.assert_allclose(
            mean.logger.series("loss").values, median.logger.series("loss").values, rtol=1e-10
        )

    def test_mean_uses_allreduce_and_median_uses_allgather(self, smoke_lm_task):
        trainer_mean, _ = run_short(smoke_lm_task, aggregator="mean")
        trainer_median, _ = run_short(smoke_lm_task, aggregator="median")
        mean_ops = {r.op for r in trainer_mean.backend.meter.records if r.tag == "values"}
        median_ops = {r.op for r in trainer_median.backend.meter.records if r.tag == "values"}
        assert mean_ops == {"allreduce"}
        assert median_ops == {"allgather"}


class TestRobustnessUnderAttack:
    @pytest.fixture(scope="class")
    def attacked_losses(self):
        """Final losses of (aggregator, attack) runs on one LM task, 8 workers."""
        from tests.conftest import make_smoke_lm_task

        task = make_smoke_lm_task()
        losses = {}
        for aggregator, attack, f in [
            ("mean", "none", 0),
            ("mean", "sign_flip", 2),
            ("median", "sign_flip", 2),
            ("krum", "sign_flip", 2),
        ]:
            _, result = run_short(
                task,
                n_workers=8,
                iterations=12,
                aggregator=aggregator,
                attack=attack,
                n_byzantine=f,
            )
            losses[(aggregator, attack)] = result.logger.series("loss").values[-1]
        return losses

    def test_sign_flip_degrades_mean(self, attacked_losses):
        assert attacked_losses[("mean", "sign_flip")] > attacked_losses[("mean", "none")]

    @pytest.mark.parametrize("robust", ["median", "krum"])
    def test_robust_aggregators_recover_majority_of_degradation(self, attacked_losses, robust):
        """The acceptance bar: robust rules recover >= half of the loss
        degradation the mean suffers under the sign-flip attack."""
        benign = attacked_losses[("mean", "none")]
        degraded = attacked_losses[("mean", "sign_flip")] - benign
        robust_degraded = attacked_losses[(robust, "sign_flip")] - benign
        assert degraded > 0
        assert robust_degraded <= 0.5 * degraded

    def test_error_feedback_stays_bounded_under_sign_flip(self, smoke_lm_task):
        """The Byzantine memory must not compound the multiplicative
        corruption (the trainer feeds honest accumulators back)."""
        _, result = run_short(
            smoke_lm_task, n_workers=4, iterations=10,
            aggregator="mean", attack="sign_flip", n_byzantine=1,
        )
        errors = result.logger.series("error").values
        assert np.isfinite(errors).all()
        assert errors[-1] < 100.0

    def test_label_flip_runs_and_stays_finite(self, smoke_image_task):
        trainer, result = run_short(
            smoke_image_task, n_workers=4, iterations=3,
            aggregator="median", attack="label_flip", n_byzantine=1,
        )
        assert np.isfinite(result.logger.series("loss").values).all()
        for p in trainer.model.parameters():
            assert np.isfinite(p.data).all()

    @pytest.mark.parametrize("aggregator", ["trimmed_mean", "multi_krum", "geometric_median", "centered_clipping"])
    def test_every_aggregator_trains_finitely_under_attack(self, smoke_lm_task, aggregator):
        _, result = run_short(
            smoke_lm_task, n_workers=6, iterations=3,
            aggregator=aggregator, attack="gaussian_noise", n_byzantine=1,
        )
        assert np.isfinite(result.logger.series("loss").values).all()


class TestDegenerateCases:
    def test_zero_byzantine_with_robust_aggregator(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, aggregator="krum", attack="sign_flip", n_byzantine=0)
        assert np.isfinite(result.logger.series("loss").values).all()

    def test_single_worker_with_robust_aggregator(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, n_workers=1, aggregator="median")
        assert result.iterations_run == 3

    def test_empty_index_union(self, smoke_lm_task):
        """A threshold no accumulator clears selects nothing anywhere; the
        aggregation of the empty union must be a no-op, not a crash."""
        trainer, result = run_short(
            smoke_lm_task,
            sparsifier_name="hard_threshold",
            sparsifier_kwargs={"threshold": 1e9},
            aggregator="median",
            iterations=2,
        )
        assert result.logger.series("density").values == pytest.approx([0.0, 0.0])
        assert np.isfinite(result.logger.series("loss").values).all()

    def test_all_byzantine_rejected(self, smoke_lm_task):
        with pytest.raises(ValueError):
            run_short(smoke_lm_task, n_workers=2, attack="sign_flip", n_byzantine=2)

    def test_metadata_records_scenario(self, smoke_lm_task):
        _, result = run_short(
            smoke_lm_task, n_workers=4, aggregator="krum", attack="sign_flip", n_byzantine=1
        )
        assert result.logger.metadata["aggregator"] == "krum"
        assert result.logger.metadata["attack"] == "sign_flip"
        assert result.logger.metadata["n_byzantine"] == 1


class TestRobustnessGridExperiment:
    @pytest.fixture(scope="class")
    def grid(self):
        return robustness_grid.run(
            scale="smoke",
            sparsifiers=("deft",),
            aggregators=("mean", "median"),
            attacks=("none", "sign_flip"),
            n_workers=8,
            n_byzantine=2,
            epochs=2,
        )

    def test_grid_structure(self, grid):
        assert set(grid["cells"]) == {
            "deft|mean|none",
            "deft|mean|sign_flip",
            "deft|median|none",
            "deft|median|sign_flip",
        }
        for cell in grid["cells"].values():
            assert cell["metric"] is not None

    def test_benign_cells_have_zero_degradation(self, grid):
        assert grid["cells"]["deft|mean|none"]["degradation"] == pytest.approx(0.0)

    def test_median_recovers_at_least_half_of_mean_degradation(self, grid):
        recovered = grid["cells"]["deft|median|sign_flip"]["recovered_vs_mean"]
        assert recovered is not None
        assert recovered >= 0.5

    def test_report_formats(self, grid):
        report = robustness_grid.format_report(grid)
        assert "median" in report
        assert "sign_flip" in report
        assert "recovered" in report

    def test_grid_without_benign_attack_does_not_crash(self):
        grid = robustness_grid.run(
            scale="smoke",
            sparsifiers=("deft",),
            aggregators=("mean",),
            attacks=("sign_flip",),
            n_workers=4,
            n_byzantine=1,
            epochs=1,
            max_iterations_per_epoch=2,
        )
        cell = grid["cells"]["deft|mean|sign_flip"]
        assert cell["metric"] is not None
        assert cell["degradation"] is None
