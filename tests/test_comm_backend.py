"""Tests for the simulated collective backend and traffic accounting."""

import numpy as np
import pytest

from repro.comm import CollectiveBackend, ReduceOp, SimulatedBackend, TrafficMeter


class TestAllgather:
    def test_concatenates_in_rank_order(self):
        backend = SimulatedBackend(3)
        buffers = [np.array([1, 2]), np.array([3]), np.array([4, 5, 6])]
        out = backend.allgather(buffers)
        assert len(out) == 3
        for received in out:
            np.testing.assert_array_equal(received, [1, 2, 3, 4, 5, 6])

    def test_returned_buffers_are_independent_copies(self):
        backend = SimulatedBackend(2)
        out = backend.allgather([np.array([1.0]), np.array([2.0])])
        out[0][0] = 99.0
        assert out[1][0] == 1.0

    def test_variable_length_buffers_supported(self):
        backend = SimulatedBackend(2)
        out = backend.allgather([np.arange(5), np.arange(2)])
        assert out[0].size == 7

    def test_wrong_buffer_count_raises(self):
        backend = SimulatedBackend(3)
        with pytest.raises(ValueError):
            backend.allgather([np.zeros(1)])

    def test_traffic_recorded(self):
        backend = SimulatedBackend(2)
        backend.allgather([np.arange(3), np.arange(4)], tag="indices")
        record = backend.meter.records[-1]
        assert record.op == "allgather"
        assert record.sent_per_rank == [3, 4]
        assert record.received_per_rank == [7, 7]
        assert record.tag == "indices"


class TestAllreduce:
    def test_sum(self):
        backend = SimulatedBackend(3)
        buffers = [np.full(4, float(i)) for i in range(3)]
        out = backend.allreduce(buffers, ReduceOp.SUM)
        for received in out:
            np.testing.assert_array_equal(received, np.full(4, 3.0))

    def test_mean_max_min(self):
        backend = SimulatedBackend(2)
        buffers = [np.array([1.0, 5.0]), np.array([3.0, 1.0])]
        np.testing.assert_array_equal(backend.allreduce(buffers, ReduceOp.MEAN)[0], [2.0, 3.0])
        np.testing.assert_array_equal(backend.allreduce(buffers, ReduceOp.MAX)[0], [3.0, 5.0])
        np.testing.assert_array_equal(backend.allreduce(buffers, ReduceOp.MIN)[0], [1.0, 1.0])

    def test_shape_mismatch_raises(self):
        backend = SimulatedBackend(2)
        with pytest.raises(ValueError):
            backend.allreduce([np.zeros(2), np.zeros(3)])

    def test_equals_numpy_sum(self):
        rng = np.random.default_rng(0)
        backend = SimulatedBackend(4)
        buffers = [rng.standard_normal(16) for _ in range(4)]
        out = backend.allreduce(buffers)
        np.testing.assert_allclose(out[0], np.sum(buffers, axis=0))


class TestBroadcast:
    def test_all_ranks_receive_roots_value(self):
        backend = SimulatedBackend(3)
        out = backend.broadcast({"layers": [1, 2, 3]}, root=1)
        assert all(o == {"layers": [1, 2, 3]} for o in out)

    def test_received_values_are_deep_copies(self):
        backend = SimulatedBackend(2)
        out = backend.broadcast([np.array([1.0])], root=0)
        out[0][0][0] = 42.0
        assert out[1][0][0] == 1.0

    def test_invalid_root(self):
        backend = SimulatedBackend(2)
        with pytest.raises(ValueError):
            backend.broadcast(1, root=5)

    def test_traffic_counts_only_root_as_sender(self):
        backend = SimulatedBackend(4)
        backend.broadcast(np.arange(10), root=2)
        record = backend.meter.records[-1]
        assert record.sent_per_rank == [0, 0, 10, 0]
        assert record.received_per_rank == [10] * 4


class TestGatherAndScalars:
    def test_gather_returns_all_buffers(self):
        backend = SimulatedBackend(2)
        out = backend.gather([np.array([1]), np.array([2])], root=0)
        np.testing.assert_array_equal(out[0], [1])
        np.testing.assert_array_equal(out[1], [2])

    def test_gather_invalid_root(self):
        backend = SimulatedBackend(2)
        with pytest.raises(ValueError):
            backend.gather([np.zeros(1), np.zeros(1)], root=9)

    def test_reduce_scalar_mean_and_sum(self):
        backend = SimulatedBackend(4)
        values = [1.0, 2.0, 3.0, 4.0]
        assert backend.reduce_scalar(values, ReduceOp.MEAN) == pytest.approx(2.5)
        assert backend.reduce_scalar(values, ReduceOp.SUM) == pytest.approx(10.0)
        assert backend.reduce_scalar(values, ReduceOp.MAX) == pytest.approx(4.0)
        assert backend.reduce_scalar(values, ReduceOp.MIN) == pytest.approx(1.0)

    def test_barrier_is_noop(self):
        assert SimulatedBackend(2).barrier() is None


class TestTrafficMeter:
    def test_totals_and_filters(self):
        meter = TrafficMeter()
        meter.record("allgather", [2, 3], [5, 5], tag="indices")
        meter.record("allreduce", [5, 5], [5, 5], tag="values")
        assert meter.total_sent() == 15
        assert meter.total_sent(op="allgather") == 5
        assert meter.total_sent(tag="values") == 10
        assert meter.call_count() == 2
        assert meter.call_count(op="allgather") == 1

    def test_by_tag(self):
        meter = TrafficMeter()
        meter.record("allgather", [1], [1], tag="a")
        meter.record("allgather", [2], [2], tag="a")
        meter.record("broadcast", [3], [3], tag="b")
        assert meter.by_tag() == {"a": 3, "b": 3}

    def test_reset(self):
        meter = TrafficMeter()
        meter.record("allgather", [1], [1])
        meter.reset()
        assert meter.call_count() == 0

    def test_record_properties(self):
        meter = TrafficMeter()
        record = meter.record("allgather", [4, 6], [10, 10])
        assert record.total_sent == 10
        assert record.total_received == 20
        assert record.max_sent == 6


class TestBackendValidation:
    def test_nonpositive_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SimulatedBackend(0)
        with pytest.raises(ValueError):
            CollectiveBackend(-1)

    def test_base_backend_is_abstract(self):
        backend = CollectiveBackend(2)
        with pytest.raises(NotImplementedError):
            backend.allgather([np.zeros(1), np.zeros(1)])
        with pytest.raises(NotImplementedError):
            backend.barrier()
