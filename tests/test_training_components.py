"""Tests for error feedback, optimizer, LR schedules, metrics and timing."""

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.tensor import Tensor, functional as F
from repro.training import (
    ConstantLR,
    CosineAnnealingLR,
    ErrorFeedbackMemory,
    IterationTiming,
    SGD,
    StepDecayLR,
    accuracy_from_logits,
    hit_rate_at_k,
    perplexity_from_loss,
)
from repro.training.metrics import actual_density, mean_error_norm
from repro.training.optimizers import flatten_gradients, gradient_layout_of
from repro.training.timing import TimingAccumulator


class TestErrorFeedbackMemory:
    def test_starts_at_zero(self):
        memory = ErrorFeedbackMemory(10)
        assert memory.error_norm() == 0.0

    def test_accumulate_adds_scaled_gradient(self):
        memory = ErrorFeedbackMemory(4)
        acc = memory.accumulate(np.array([1.0, 2.0, 3.0, 4.0]), lr=0.5)
        np.testing.assert_allclose(acc, [0.5, 1.0, 1.5, 2.0])
        # The stored error is unchanged until update() is called.
        assert memory.error_norm() == 0.0

    def test_update_zeroes_selected_and_keeps_rest(self):
        memory = ErrorFeedbackMemory(4)
        acc = np.array([1.0, 2.0, 3.0, 4.0])
        memory.update(acc, np.array([1, 3]))
        np.testing.assert_allclose(memory.error, [1.0, 0.0, 3.0, 0.0])

    def test_error_carries_into_next_accumulation(self):
        memory = ErrorFeedbackMemory(3)
        memory.update(np.array([1.0, 1.0, 1.0]), np.array([0]))
        acc = memory.accumulate(np.array([1.0, 1.0, 1.0]), lr=1.0)
        np.testing.assert_allclose(acc, [1.0, 2.0, 2.0])

    def test_conservation_invariant(self):
        """acc = new_error + transmitted part: nothing is lost or invented."""
        rng = np.random.default_rng(0)
        memory = ErrorFeedbackMemory(50)
        acc = rng.standard_normal(50)
        selected = rng.choice(50, size=10, replace=False)
        memory.update(acc, selected)
        transmitted = np.zeros(50)
        transmitted[selected] = acc[selected]
        np.testing.assert_allclose(memory.error + transmitted, acc)

    def test_full_selection_leaves_zero_error(self):
        memory = ErrorFeedbackMemory(5)
        memory.update(np.ones(5), np.arange(5))
        assert memory.error_norm() == 0.0

    def test_empty_selection_keeps_everything(self):
        memory = ErrorFeedbackMemory(5)
        memory.update(np.ones(5), np.array([], dtype=np.int64))
        assert memory.error_norm() == pytest.approx(np.sqrt(5))

    def test_reset(self):
        memory = ErrorFeedbackMemory(5)
        memory.update(np.ones(5), np.array([0]))
        memory.reset()
        assert memory.error_norm() == 0.0

    def test_shape_validation(self):
        memory = ErrorFeedbackMemory(5)
        with pytest.raises(ValueError):
            memory.accumulate(np.ones(4), lr=1.0)
        with pytest.raises(ValueError):
            memory.update(np.ones(6), np.array([0]))
        with pytest.raises(ValueError):
            ErrorFeedbackMemory(0)


class TestSGD:
    def _model(self):
        return MLP(in_features=4, hidden_sizes=(6,), num_classes=3, rng=np.random.default_rng(0))

    def test_apply_update_subtracts(self):
        model = self._model()
        optimizer = SGD(model)
        before = [p.data.copy() for p in model.parameters()]
        update = np.ones(optimizer.n_gradients) * 0.1
        optimizer.apply_update(update)
        for prev, param in zip(before, model.parameters()):
            np.testing.assert_allclose(param.data, prev - 0.1, atol=1e-6)

    def test_momentum_accumulates_velocity(self):
        model = self._model()
        optimizer = SGD(model, momentum=0.9)
        before = [p.data.copy() for p in model.parameters()]
        update = np.ones(optimizer.n_gradients) * 0.1
        optimizer.apply_update(update)
        optimizer.apply_update(update)
        # After two steps with momentum 0.9: total = 0.1 + (0.09 + 0.1) = 0.29
        for prev, param in zip(before, model.parameters()):
            np.testing.assert_allclose(param.data, prev - 0.29, atol=1e-5)

    def test_weight_decay_shrinks_parameters(self):
        model = self._model()
        optimizer = SGD(model, weight_decay=0.1)
        before = [p.data.copy() for p in model.parameters()]
        optimizer.apply_update(np.zeros(optimizer.n_gradients))
        for prev, param in zip(before, model.parameters()):
            np.testing.assert_allclose(param.data, prev * 0.9, atol=1e-6)

    def test_wrong_update_size_rejected(self):
        optimizer = SGD(self._model())
        with pytest.raises(ValueError):
            optimizer.apply_update(np.zeros(3))

    def test_state_dict_roundtrip(self):
        model = self._model()
        optimizer = SGD(model, momentum=0.5)
        optimizer.apply_update(np.ones(optimizer.n_gradients))
        state = optimizer.state_dict()
        fresh = SGD(self._model(), momentum=0.5)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh._velocity, optimizer._velocity)

    def test_flatten_gradients_layout(self):
        model = self._model()
        x = Tensor(np.random.default_rng(1).standard_normal((5, 4)).astype(np.float32))
        F.cross_entropy(model(x), np.array([0, 1, 2, 0, 1])).backward()
        flat = flatten_gradients(model)
        assert flat.size == model.num_parameters()
        offset = 0
        for _, param in model.named_parameters():
            np.testing.assert_allclose(flat[offset : offset + param.size], param.grad.reshape(-1), atol=1e-6)
            offset += param.size

    def test_flatten_gradients_missing_grad(self):
        model = self._model()
        flat = flatten_gradients(model, zero_missing=True)
        assert np.all(flat == 0)
        with pytest.raises(RuntimeError):
            flatten_gradients(model, zero_missing=False)

    def test_gradient_layout_of(self):
        layout = gradient_layout_of(self._model())
        assert layout[0][0] == "net.0.weight"
        assert layout[0][1] == (6, 4)


class TestLRSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.1)
        assert schedule(0) == schedule(1000) == 0.1

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_step_decay(self):
        schedule = StepDecayLR(1.0, milestones=[10, 20], gamma=0.1)
        assert schedule(0) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(25) == pytest.approx(0.01)

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(1.0, [5], gamma=0.0)
        with pytest.raises(ValueError):
            StepDecayLR(-1.0, [5])

    def test_cosine_annealing_endpoints(self):
        schedule = CosineAnnealingLR(1.0, total_iterations=100, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert 0.1 < schedule(50) < 1.0

    def test_cosine_is_monotone_decreasing(self):
        schedule = CosineAnnealingLR(1.0, total_iterations=50)
        values = [schedule(i) for i in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(1.0, 0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
        assert accuracy_from_logits(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy_from_logits(np.zeros((0, 3)), np.zeros(0)) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_from_logits(np.zeros((2, 3)), np.zeros(3))

    def test_perplexity(self):
        assert perplexity_from_loss(0.0) == pytest.approx(1.0)
        assert perplexity_from_loss(np.log(50.0)) == pytest.approx(50.0)

    def test_perplexity_cap(self):
        assert perplexity_from_loss(1000.0) == 1e4

    def test_hit_rate(self):
        rankings = [[3, 1, 2], [9, 8, 7], [5, 6, 4]]
        positives = [1, 0, 5]
        assert hit_rate_at_k(rankings, positives, k=2) == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert hit_rate_at_k([], [], k=10) == 0.0

    def test_actual_density(self):
        assert actual_density(50, 1000) == 0.05
        with pytest.raises(ValueError):
            actual_density(1, 0)

    def test_mean_error_norm(self):
        assert mean_error_norm([1.0, 3.0]) == 2.0
        assert mean_error_norm([]) == 0.0


class TestTiming:
    def test_iteration_total(self):
        timing = IterationTiming(forward=1, backward=2, selection=3, communication=4, partition=5)
        assert timing.total == 15
        assert timing.as_dict()["selection"] == 3

    def test_accumulator_mean(self):
        accumulator = TimingAccumulator()
        accumulator.add(IterationTiming(forward=1.0))
        accumulator.add(IterationTiming(forward=3.0))
        assert accumulator.mean_breakdown()["forward"] == 2.0
        assert accumulator.mean_total() == 2.0
        assert len(accumulator) == 2

    def test_empty_accumulator(self):
        accumulator = TimingAccumulator()
        assert accumulator.mean_total() == 0.0
        assert all(v == 0.0 for v in accumulator.mean_breakdown().values())
