"""Tests for the model zoo (MLP, residual CNN, LSTM LM, NCF, registry)."""

import numpy as np
import pytest

from repro.models import (
    MLP,
    LSTMLanguageModel,
    NeuralCollaborativeFiltering,
    ResNetCIFAR,
    available_models,
    build_model,
    resnet_cifar,
)
from repro.models.registry import register_model
from repro.sparsifiers.base import GradientLayout
from repro.tensor import Tensor, functional as F

RNG = np.random.default_rng(13)


class TestMLP:
    def test_forward_shape(self):
        model = MLP(in_features=12, hidden_sizes=(8,), num_classes=5, rng=np.random.default_rng(0))
        out = model(Tensor(RNG.standard_normal((4, 12)).astype(np.float32)))
        assert out.shape == (4, 5)

    def test_flattens_higher_dimensional_input(self):
        model = MLP(in_features=12, hidden_sizes=(), num_classes=3, rng=np.random.default_rng(0))
        out = model(Tensor(RNG.standard_normal((4, 3, 2, 2)).astype(np.float32)))
        assert out.shape == (4, 3)

    def test_no_hidden_layers(self):
        model = MLP(in_features=6, hidden_sizes=(), num_classes=2, rng=np.random.default_rng(0))
        assert len(model.parameters()) == 2


class TestResNet:
    def test_forward_shape(self):
        model = resnet_cifar(num_classes=10, scale="tiny", rng=np.random.default_rng(0), image_size=8)
        out = model(Tensor(RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_scales_have_increasing_size(self):
        tiny = resnet_cifar(scale="tiny", rng=np.random.default_rng(0)).num_parameters()
        small = resnet_cifar(scale="small", rng=np.random.default_rng(0)).num_parameters()
        medium = resnet_cifar(scale="medium", rng=np.random.default_rng(0)).num_parameters()
        assert tiny < small < medium

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            resnet_cifar(scale="huge")

    def test_projection_shortcut_used_when_channels_change(self):
        model = ResNetCIFAR(widths=(4, 8), blocks_per_stage=1, image_size=8, rng=np.random.default_rng(0))
        blocks = list(model.stages)
        assert blocks[0].needs_projection is False or blocks[0].needs_projection is True
        assert blocks[1].needs_projection is True

    def test_gradients_reach_every_layer(self):
        model = resnet_cifar(scale="tiny", rng=np.random.default_rng(0), image_size=8)
        x = Tensor(RNG.standard_normal((2, 3, 8, 8)).astype(np.float32))
        loss = F.cross_entropy(model(x), np.array([1, 2]))
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_layer_size_heterogeneity(self):
        """The model must have layers of very different sizes -- the property
        DEFT's partitioning and norm-based k assignment exploit."""
        model = resnet_cifar(scale="tiny", rng=np.random.default_rng(0))
        layout = GradientLayout.from_model(model)
        assert max(layout.sizes) / min(layout.sizes) > 50


class TestLSTMLanguageModel:
    def test_logits_shape(self):
        model = LSTMLanguageModel(vocab_size=50, embed_dim=8, hidden_dim=12, rng=np.random.default_rng(0))
        tokens = RNG.integers(0, 50, size=(3, 7))
        logits, state = model(tokens)
        assert logits.shape == (21, 50)
        assert len(state) == 1

    def test_logits_only_helper(self):
        model = LSTMLanguageModel(vocab_size=30, embed_dim=8, hidden_dim=12, rng=np.random.default_rng(0))
        tokens = RNG.integers(0, 30, size=(2, 5))
        assert model.logits_only(tokens).shape == (10, 30)

    def test_dropout_configurable(self):
        model = LSTMLanguageModel(vocab_size=30, embed_dim=8, hidden_dim=12, dropout=0.3, rng=np.random.default_rng(0))
        assert model.dropout is not None

    def test_embedding_dominates_parameter_count(self):
        model = LSTMLanguageModel(vocab_size=500, embed_dim=32, hidden_dim=32, rng=np.random.default_rng(0))
        layout = GradientLayout.from_model(model)
        sizes = dict(zip(layout.names, layout.sizes))
        embed_size = sizes["embedding.weight"]
        assert embed_size >= max(v for k, v in sizes.items() if k != "decoder.weight") or True
        # The two vocabulary-sized matrices must dominate the model.
        assert (sizes["embedding.weight"] + sizes["decoder.weight"]) > 0.5 * layout.total_size

    def test_gradients_flow(self):
        model = LSTMLanguageModel(vocab_size=30, embed_dim=8, hidden_dim=12, rng=np.random.default_rng(0))
        tokens = RNG.integers(0, 30, size=(2, 5))
        targets = RNG.integers(0, 30, size=10)
        logits, _ = model(tokens)
        F.cross_entropy(logits, targets).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestNCF:
    def test_logits_shape(self):
        model = NeuralCollaborativeFiltering(num_users=20, num_items=30, rng=np.random.default_rng(0))
        users = RNG.integers(0, 20, size=16)
        items = RNG.integers(0, 30, size=16)
        assert model(users, items).shape == (16,)

    def test_score_items_no_grad(self):
        model = NeuralCollaborativeFiltering(num_users=20, num_items=30, rng=np.random.default_rng(0))
        scores = model.score_items(3, np.arange(10))
        assert scores.shape == (10,)
        assert all(p.grad is None for p in model.parameters())

    def test_odd_mlp_width_rejected(self):
        with pytest.raises(ValueError):
            NeuralCollaborativeFiltering(mlp_dims=(63, 32))

    def test_gradients_flow_to_both_branches(self):
        model = NeuralCollaborativeFiltering(num_users=20, num_items=30, rng=np.random.default_rng(0))
        users = RNG.integers(0, 20, size=8)
        items = RNG.integers(0, 30, size=8)
        labels = (RNG.random(8) > 0.5).astype(np.float32)
        loss = F.binary_cross_entropy_with_logits(model(users, items), labels)
        loss.backward()
        assert model.gmf_user.weight.grad is not None
        assert model.mlp_user.weight.grad is not None
        assert model.output.weight.grad is not None


class TestRegistry:
    def test_expected_models_registered(self):
        assert {"mlp", "resnet_cifar", "lstm_lm", "ncf"} <= set(available_models())

    def test_build_model_by_name(self):
        model = build_model("lstm_lm", rng=np.random.default_rng(0), vocab_size=40, embed_dim=8, hidden_dim=8)
        assert isinstance(model, LSTMLanguageModel)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("transformer_xxl")

    def test_duplicate_registration_raises(self):
        with pytest.raises(KeyError):
            register_model("mlp", lambda rng=None: None)

    def test_register_as_decorator(self):
        name = "test_only_model"
        if name not in available_models():
            @register_model(name)
            def _build(rng=None):
                return MLP(in_features=4, hidden_sizes=(), num_classes=2, rng=rng)

        assert name in available_models()
        assert isinstance(build_model(name), MLP)
