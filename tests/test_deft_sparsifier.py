"""Tests for the end-to-end DEFTSparsifier (orchestration of Algorithms 2-5)."""

import numpy as np

from repro.comm import SimulatedBackend
from repro.sparsifiers import DEFTSparsifier
from repro.sparsifiers.deft.allocation import AllocationPolicy


def make_accs(layout, n_workers, seed=0, scale=0.05):
    """Per-worker accumulators: shared signal plus small worker-specific noise
    (workers share model state, so their gradients are similar but not equal)."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(layout.total_size)
    for i, (offset, size) in enumerate(zip(layout.offsets, layout.sizes)):
        base[offset : offset + size] *= (i + 1) * 0.4
    accs = []
    for rank in range(n_workers):
        noise = np.random.default_rng(seed + 100 + rank).standard_normal(layout.total_size)
        accs.append(base + scale * noise)
    return accs


class TestSetup:
    def test_partitions_created_on_setup(self, small_layout):
        sparsifier = DEFTSparsifier(0.05)
        sparsifier.setup(small_layout, 4)
        assert len(sparsifier.partitions) >= small_layout.n_layers
        assert sum(p.size for p in sparsifier.partitions) == small_layout.total_size

    def test_single_stage_ablation_has_one_partition_per_layer(self, small_layout):
        sparsifier = DEFTSparsifier(0.05, two_stage=False)
        sparsifier.setup(small_layout, 8)
        assert len(sparsifier.partitions) == small_layout.n_layers

    def test_delegate_cycles(self, small_layout):
        sparsifier = DEFTSparsifier(0.05)
        sparsifier.setup(small_layout, 4)
        assert [sparsifier.delegate_of(i) for i in range(5)] == [0, 1, 2, 3, 0]


class TestSelection:
    def test_workers_select_disjoint_indices(self, small_layout):
        n_workers = 4
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, n_workers)
        accs = make_accs(small_layout, n_workers)
        sparsifier.coordinate(0, accs)
        all_indices = [sparsifier.select(0, rank, accs[rank]).indices for rank in range(n_workers)]
        union = np.concatenate(all_indices)
        assert np.unique(union).size == union.size

    def test_union_size_close_to_global_k(self, small_layout):
        n_workers = 4
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, n_workers)
        accs = make_accs(small_layout, n_workers)
        sparsifier.coordinate(0, accs)
        union = np.concatenate([sparsifier.select(0, r, accs[r]).indices for r in range(n_workers)])
        k = sparsifier.global_k
        # The per-layer floor of 1 and worker-local k assignment can move the
        # total by roughly the number of partitions.
        assert abs(union.size - k) <= len(sparsifier.partitions) + n_workers

    def test_indices_within_range(self, small_layout):
        sparsifier = DEFTSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        accs = make_accs(small_layout, 2)
        sparsifier.coordinate(0, accs)
        for rank in range(2):
            idx = sparsifier.select(0, rank, accs[rank]).indices
            assert idx.min() >= 0 and idx.max() < small_layout.total_size

    def test_standalone_mode_without_coordinate(self, small_layout, small_acc):
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, 3)
        result = sparsifier.select(0, 1, small_acc)
        assert result.k_selected > 0

    def test_selection_prefers_high_norm_layers(self, small_layout):
        """A layer given a 10x larger gradient magnitude must receive a larger
        share of the selected indices than an equal-sized quiet layer."""
        rng = np.random.default_rng(0)
        flat = rng.standard_normal(small_layout.total_size) * 0.01
        loud = small_layout.slices()[1]  # lstm.weight_ih (256 elements)
        quiet = small_layout.slices()[2]  # lstm.weight_hh (same size)
        flat[loud] = rng.standard_normal(loud.stop - loud.start) * 1.0
        sparsifier = DEFTSparsifier(0.05)
        sparsifier.setup(small_layout, 1)
        result = sparsifier.select(0, 0, flat)
        idx = result.indices
        loud_count = ((idx >= loud.start) & (idx < loud.stop)).sum()
        quiet_count = ((idx >= quiet.start) & (idx < quiet.stop)).sum()
        assert loud_count > quiet_count

    def test_allocation_covers_all_partitions(self, small_layout):
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        accs = make_accs(small_layout, 4)
        sparsifier.coordinate(0, accs)
        allocated = sorted(i for items in sparsifier._allocation for i in items)
        assert allocated == list(range(len(sparsifier.partitions)))

    def test_info_contains_partition_metadata(self, small_layout, small_acc):
        sparsifier = DEFTSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        assert result.info["n_partitions"] == len(sparsifier.partitions)
        assert result.info["allocation_policy"] == "bin_packing"
        assert "partition_seconds" in result.info


class TestCoordinate:
    def test_broadcast_overhead_recorded(self, small_layout):
        n_workers = 3
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, n_workers)
        backend = SimulatedBackend(n_workers)
        accs = make_accs(small_layout, n_workers)
        sparsifier.coordinate(0, accs, backend)
        record = backend.meter.records[-1]
        assert record.op == "broadcast"
        assert record.tag == "deft-allocation"
        # Payload is one integer per partitioned layer (the paper's 4L bytes).
        assert record.received_per_rank[0] == len(sparsifier.partitions)

    def test_allocation_changes_with_delegate(self, small_layout):
        """Different iterations can produce different allocations because the
        delegated worker (and its accumulator) changes."""
        n_workers = 2
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, n_workers)
        accs = make_accs(small_layout, n_workers, scale=1.0)
        sparsifier.coordinate(0, accs)
        alloc0 = [list(items) for items in sparsifier._allocation]
        sparsifier.coordinate(1, accs)
        alloc1 = [list(items) for items in sparsifier._allocation]
        # They may coincide, but the delegate must differ.
        assert sparsifier.delegate_of(0) != sparsifier.delegate_of(1)
        assert alloc0 is not None and alloc1 is not None

    def test_cached_allocation_reused_within_iteration(self, small_layout):
        sparsifier = DEFTSparsifier(0.1)
        sparsifier.setup(small_layout, 2)
        accs = make_accs(small_layout, 2)
        sparsifier.coordinate(5, accs)
        cached = sparsifier._allocation
        sparsifier.select(5, 0, accs[0])
        assert sparsifier._allocation is cached


class TestAblations:
    def test_round_robin_policy_still_disjoint(self, small_layout):
        sparsifier = DEFTSparsifier(0.1, allocation_policy=AllocationPolicy.ROUND_ROBIN)
        sparsifier.setup(small_layout, 3)
        accs = make_accs(small_layout, 3)
        sparsifier.coordinate(0, accs)
        union = np.concatenate([sparsifier.select(0, r, accs[r]).indices for r in range(3)])
        assert np.unique(union).size == union.size

    def test_bin_packing_balances_better_than_round_robin(self):
        """On a layout with very unequal layer sizes, the paper's bin-packing
        allocation yields a lower max per-worker analytic cost."""
        from repro.sparsifiers.base import GradientLayout

        layout = GradientLayout.from_named_shapes(
            [("big", (5000,)), ("mid", (800,)), ("small1", (60,)), ("small2", (40,)), ("small3", (30,)), ("small4", (20,))]
        )
        rng = np.random.default_rng(0)
        flat = rng.standard_normal(layout.total_size)
        n_workers = 3

        def max_cost(policy):
            sparsifier = DEFTSparsifier(0.02, allocation_policy=policy)
            sparsifier.setup(layout, n_workers)
            accs = [flat + 0.01 * rng.standard_normal(flat.size) for _ in range(n_workers)]
            sparsifier.coordinate(0, accs)
            costs = [sparsifier.select(0, r, accs[r]).analytic_cost for r in range(n_workers)]
            return max(costs)

        assert max_cost(AllocationPolicy.BIN_PACKING) <= max_cost(AllocationPolicy.ROUND_ROBIN)

    def test_uniform_k_ablation_differs_from_norm_proportional(self, small_layout):
        rng = np.random.default_rng(0)
        flat = rng.standard_normal(small_layout.total_size)
        # Make one layer much louder so the norm-aware assignment must differ.
        flat[small_layout.slices()[0]] *= 20.0
        norm_aware = DEFTSparsifier(0.05, norm_proportional_k=True)
        uniform = DEFTSparsifier(0.05, norm_proportional_k=False)
        norm_aware.setup(small_layout, 1)
        uniform.setup(small_layout, 1)
        ks_norm = norm_aware._assign_k(flat)
        ks_uniform = uniform._assign_k(flat)
        assert not np.array_equal(ks_norm, ks_uniform)
        # The loud layer gets more budget under the norm-aware rule.
        assert ks_norm[0] >= ks_uniform[0]


class TestRobustNorms:
    """--robust-norms: median-of-norms k assignment in the coordinate phase."""

    def test_shared_norms_computed_and_gathered(self, small_layout):
        sparsifier = DEFTSparsifier(0.05, robust_norms=True)
        sparsifier.setup(small_layout, 4)
        backend = SimulatedBackend(4)
        accs = make_accs(small_layout, 4)
        sparsifier.coordinate(0, accs, backend)
        assert sparsifier._shared_norms is not None
        assert sparsifier._shared_norms.shape == (len(sparsifier.partitions),)
        assert backend.meter.call_count(tag="deft-norms") == 1

    def test_byzantine_delegate_cannot_grab_budget(self, small_layout):
        """Iteration 3's delegate is rank 3.  When that worker inflates one
        layer's accumulator by 1e6, the non-robust allocation assigns that
        layer (nearly) the whole budget; the robust one does not."""
        n_workers = 4
        accs = make_accs(small_layout, n_workers)
        accs[3] = accs[3].copy()
        inflated = slice(small_layout.offsets[0], small_layout.offsets[0] + small_layout.sizes[0])
        accs[3][inflated] *= 1e6

        def k_in_inflated_layer(sparsifier):
            sparsifier.setup(small_layout, n_workers)
            sparsifier.coordinate(3, accs, SimulatedBackend(n_workers))
            ks = sparsifier._assign_k(accs[3], 3)
            end = small_layout.offsets[0] + small_layout.sizes[0]
            return sum(
                int(k) for k, p in zip(ks, sparsifier.partitions) if p.start < end
            ), int(ks.sum())

        grabbed, total_plain = k_in_inflated_layer(DEFTSparsifier(0.05))
        robust, total_robust = k_in_inflated_layer(DEFTSparsifier(0.05, robust_norms=True))
        # Algorithm 3's one-slot floor leaves each other partition a single
        # gradient, so "the whole budget" means everything above that floor.
        assert grabbed >= 0.8 * total_plain
        assert robust < 0.6 * total_robust

    def test_benign_selection_stays_disjoint(self, small_layout):
        sparsifier = DEFTSparsifier(0.05, robust_norms=True)
        sparsifier.setup(small_layout, 4)
        accs = make_accs(small_layout, 4)
        sparsifier.coordinate(0, accs, SimulatedBackend(4))
        all_indices = []
        for rank in range(4):
            result = sparsifier.select(0, rank, accs[rank])
            all_indices.append(result.indices)
        union = np.concatenate(all_indices)
        assert len(union) == len(np.unique(union))

    def test_robust_norms_shared_across_workers(self, small_layout):
        """With the statistic coordinated, every worker assigns the same
        per-partition k, matching the allocation's cost assumptions."""
        sparsifier = DEFTSparsifier(0.05, robust_norms=True)
        sparsifier.setup(small_layout, 4)
        accs = make_accs(small_layout, 4)
        sparsifier.coordinate(0, accs, SimulatedBackend(4))
        ks = [sparsifier._assign_k(accs[rank], 0) for rank in range(4)]
        for other in ks[1:]:
            np.testing.assert_array_equal(ks[0], other)

    def test_off_by_default_and_standalone_fallback(self, small_layout, small_acc):
        sparsifier = DEFTSparsifier(0.05)
        assert sparsifier.robust_norms is False
        robust = DEFTSparsifier(0.05, robust_norms=True)
        robust.setup(small_layout, 4)
        # Standalone select without coordinate still works (local norms).
        result = robust.select(0, 0, small_acc)
        assert result.k_selected > 0
