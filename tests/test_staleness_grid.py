"""Tests for the staleness grid experiment (execution x sparsifier x profile)."""

import pytest

from repro.experiments import staleness_grid


class TestStalenessGridExperiment:
    @pytest.fixture(scope="class")
    def grid(self):
        return staleness_grid.run(
            scale="smoke",
            executions=("synchronous", "async_bsp", "local_sgd"),
            sparsifiers=("deft",),
            profiles=("lognormal",),
            n_workers=4,
            epochs=1,
            max_iterations_per_epoch=4,
        )

    def test_grid_structure(self, grid):
        assert set(grid["cells"]) == {
            "synchronous|deft|lognormal",
            "async_bsp|deft|lognormal",
            "local_sgd|deft|lognormal",
        }
        for cell in grid["cells"].values():
            assert cell["loss"] is not None
            assert cell["wallclock"] > 0

    def test_sync_speedup_is_one(self, grid):
        assert grid["cells"]["synchronous|deft|lognormal"]["speedup_vs_sync"] == pytest.approx(1.0)

    def test_async_faster_than_sync_under_stragglers(self, grid):
        """The headline claim of the execution subsystem."""
        assert grid["cells"]["async_bsp|deft|lognormal"]["speedup_vs_sync"] > 1.0

    def test_local_sgd_faster_than_sync(self, grid):
        assert grid["cells"]["local_sgd|deft|lognormal"]["speedup_vs_sync"] > 1.0

    def test_report_formats(self, grid):
        report = staleness_grid.format_report(grid)
        assert "async_bsp" in report
        assert "lognormal" in report
        assert "speedup" in report

    def test_default_cells_cover_full_grid(self):
        assert staleness_grid.DEFAULT_EXECUTIONS == (
            "synchronous", "local_sgd", "async_bsp", "elastic",
        )
        assert "uniform" in staleness_grid.DEFAULT_PROFILES

    def test_elastic_runs_once_per_profile(self):
        """Elastic never uses the sparsifier, so sweeping it per sparsifier
        would train identical cells twice; it appears once, labeled '-'."""
        grid = staleness_grid.run(
            scale="smoke",
            executions=("synchronous", "elastic"),
            sparsifiers=("deft", "topk"),
            profiles=("uniform",),
            n_workers=2,
            epochs=1,
            max_iterations_per_epoch=2,
        )
        assert set(grid["cells"]) == {
            "synchronous|deft|uniform",
            "synchronous|topk|uniform",
            "elastic|-|uniform",
        }
        assert grid["cells"]["elastic|-|uniform"]["speedup_vs_sync"] is not None
