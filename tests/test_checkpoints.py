"""Tests for training checkpoints (save / resume)."""

import numpy as np
import pytest

from repro.sparsifiers import build_sparsifier
from repro.training.checkpoints import CheckpointMetadata, load_checkpoint, save_checkpoint
from repro.training.trainer import DistributedTrainer, TrainingConfig
from tests.conftest import make_smoke_lm_task


def make_trainer(n_workers=2, momentum=0.0, seed=0):
    task = make_smoke_lm_task(seed=seed)
    sparsifier = build_sparsifier("deft", 0.05)
    config = TrainingConfig(n_workers=n_workers, batch_size=8, epochs=1, lr=0.2, seed=seed,
                            momentum=momentum, max_iterations_per_epoch=3, evaluate_each_epoch=False)
    return DistributedTrainer(task, sparsifier, config)


class TestSaveLoad:
    def test_roundtrip_restores_model_and_errors(self, tmp_path):
        trainer = make_trainer()
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt")
        assert path.exists()
        assert path.with_suffix(".json").exists()

        fresh = make_trainer()
        metadata = load_checkpoint(fresh, path)
        assert metadata.iteration == trainer.iteration
        assert fresh.iteration == trainer.iteration
        for a, b in zip(trainer.model.parameters(), fresh.model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)
        for mem_a, mem_b in zip(trainer.memories, fresh.memories):
            np.testing.assert_array_equal(mem_a.error, mem_b.error)

    def test_momentum_state_restored(self, tmp_path):
        trainer = make_trainer(momentum=0.9)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "momentum.npz")
        fresh = make_trainer(momentum=0.9)
        load_checkpoint(fresh, path)
        np.testing.assert_allclose(fresh.optimizer._velocity, trainer.optimizer._velocity)

    def test_metadata_contents(self, tmp_path):
        trainer = make_trainer()
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "meta", extra={"note": 1.0})
        metadata = load_checkpoint(make_trainer(), path)
        assert metadata.sparsifier == "deft"
        assert metadata.density == 0.05
        assert metadata.task == "language_modeling"
        assert metadata.extra == {"note": 1.0}

    def test_worker_count_mismatch_rejected(self, tmp_path):
        trainer = make_trainer(n_workers=2)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "two_workers")
        with pytest.raises(ValueError):
            load_checkpoint(make_trainer(n_workers=4), path)

    def test_suffix_normalised(self, tmp_path):
        trainer = make_trainer()
        path = save_checkpoint(trainer, tmp_path / "no_suffix")
        assert path.suffix == ".npz"

    def test_resumed_training_continues(self, tmp_path):
        trainer = make_trainer()
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "resume")
        resumed = make_trainer()
        load_checkpoint(resumed, path)
        before = resumed.iteration
        resumed.train()
        assert resumed.iteration > before

    def test_metadata_roundtrip(self):
        metadata = CheckpointMetadata(iteration=7, n_workers=4, sparsifier="deft",
                                      density=0.01, task="lm", extra={"a": 2.0})
        restored = CheckpointMetadata.from_dict(metadata.to_dict())
        assert restored == metadata
