"""API-surface snapshot check.

Guards the public surface against accidental breakage: the names exported
by :mod:`repro.api` and the full component inventory (names, kwargs
schemas, capability flags) are compared against the committed fixture
``tests/fixtures/api_surface.json``.  An *intentional* surface change must
regenerate the fixture by running this module as a script::

    PYTHONPATH=src python tests/test_api_surface.py

and the fixture diff then documents the change for review.
"""

import json
from pathlib import Path

import repro.api
from repro.plugins import component_inventory

FIXTURE = Path(__file__).parent / "fixtures" / "api_surface.json"


def current_surface() -> dict:
    """The snapshot-tested public surface."""
    return {
        "api_all": sorted(repro.api.__all__),
        "components": component_inventory(),
    }


def test_api_surface_matches_fixture():
    recorded = json.loads(FIXTURE.read_text())
    surface = current_surface()
    assert surface["api_all"] == recorded["api_all"], (
        "repro.api.__all__ changed; if intentional, regenerate "
        "tests/fixtures/api_surface.json (see module docstring)"
    )
    assert surface["components"] == recorded["components"], (
        "the registered component inventory (names, kwargs schemas or "
        "capability flags) changed; if intentional, regenerate "
        "tests/fixtures/api_surface.json (see module docstring)"
    )


def test_cli_json_inventory_agrees_with_fixture():
    """`repro list --json` must expose exactly the recorded components."""
    from repro.cli import _inventory_json

    recorded = json.loads(FIXTURE.read_text())
    assert _inventory_json()["components"] == recorded["components"]


if __name__ == "__main__":  # pragma: no cover - fixture regeneration helper
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
