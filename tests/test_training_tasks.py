"""Tests for the workload task adapters."""

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.tensor import Tensor
from repro.training.tasks import (
    ImageClassificationTask,
    LanguageModelingTask,
    RecommendationTask,
    Task,
)


class TestTaskInterface:
    def test_base_methods_abstract(self):
        task = Task()
        with pytest.raises(NotImplementedError):
            task.build_model()
        with pytest.raises(NotImplementedError):
            task.train_dataset()
        with pytest.raises(NotImplementedError):
            task.compute_loss(None, None)
        with pytest.raises(NotImplementedError):
            task.evaluate(None)


class TestImageClassificationTask:
    @pytest.fixture(scope="class")
    def task(self):
        return ImageClassificationTask(n_train=64, n_test=32, num_classes=4, image_size=8, model_scale="tiny", seed=0)

    def test_metadata(self, task):
        assert task.metric_name == "accuracy"
        assert task.metric_higher_is_better

    def test_model_matches_dataset(self, task):
        model = task.build_model()
        loader = DataLoader(task.train_dataset(), batch_size=8)
        images, labels = next(iter(loader))
        logits = model(Tensor(images.astype(np.float32)))
        assert logits.shape == (8, 4)

    def test_loss_is_finite_scalar(self, task):
        model = task.build_model()
        batch = next(iter(DataLoader(task.train_dataset(), batch_size=8)))
        loss = task.compute_loss(model, batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_evaluate_returns_accuracy_in_unit_interval(self, task):
        metrics = task.evaluate(task.build_model())
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_evaluate_restores_training_mode(self, task):
        model = task.build_model()
        task.evaluate(model)
        assert model.training


class TestLanguageModelingTask:
    @pytest.fixture(scope="class")
    def task(self):
        return LanguageModelingTask(vocab_size=60, train_tokens=2048, test_tokens=512, seq_len=8, embed_dim=12, hidden_dim=16, seed=0)

    def test_metadata(self, task):
        assert task.metric_name == "perplexity"
        assert not task.metric_higher_is_better

    def test_loss_and_logits(self, task):
        model = task.build_model()
        batch = next(iter(DataLoader(task.train_dataset(), batch_size=4)))
        loss = task.compute_loss(model, batch)
        assert np.isfinite(loss.item())

    def test_initial_perplexity_near_vocab_size(self, task):
        """An untrained model's perplexity should be near the vocabulary size
        (uniform prediction), confirming the metric wiring."""
        metrics = task.evaluate(task.build_model())
        assert 25 <= metrics["perplexity"] <= 150

    def test_vocab_size_property(self, task):
        assert task.vocab_size == 60


class TestRecommendationTask:
    @pytest.fixture(scope="class")
    def task(self):
        return RecommendationTask(num_users=32, num_items=64, interactions_per_user=8, seed=0)

    def test_metadata(self, task):
        assert task.metric_name == "hr@10"

    def test_loss(self, task):
        model = task.build_model()
        batch = next(iter(DataLoader(task.train_dataset(), batch_size=16)))
        loss = task.compute_loss(model, batch)
        assert np.isfinite(loss.item())

    def test_evaluate_hr_in_unit_interval(self, task):
        metrics = task.evaluate(task.build_model())
        assert 0.0 <= metrics["hr@10"] <= 1.0

    def test_untrained_hr_near_chance(self, task):
        """With 100 candidates and 10 slots, chance-level hr@10 is ~0.10."""
        metrics = task.evaluate(task.build_model())
        assert metrics["hr@10"] <= 0.45

    def test_eval_users_subset(self):
        task = RecommendationTask(num_users=32, num_items=64, eval_users=5, seed=0)
        metrics = task.evaluate(task.build_model())
        assert 0.0 <= metrics["hr@10"] <= 1.0
