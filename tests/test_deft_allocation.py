"""Tests for Algorithm 4: bin-packing based layer allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsifiers.base import GradientLayout
from repro.sparsifiers.deft.allocation import (
    AllocationPolicy,
    allocate_layers,
    allocation_payload_elements,
    layer_costs,
)
from repro.sparsifiers.deft.k_assignment import assign_local_k
from repro.sparsifiers.deft.partitioning import two_stage_partition


def make_partitions(sizes, n_workers=1):
    layout = GradientLayout.from_named_shapes([(f"l{i}", (s,)) for i, s in enumerate(sizes)])
    return two_stage_partition(layout, n_workers)


class TestLayerCosts:
    def test_cost_formula(self):
        partitions = make_partitions([100, 200])
        costs = layer_costs(partitions, [8, 16])
        assert costs[0] == pytest.approx(100 * np.log2(8))
        assert costs[1] == pytest.approx(200 * np.log2(16))

    def test_zero_k_costs_nothing(self):
        partitions = make_partitions([100])
        assert layer_costs(partitions, [0])[0] == 0.0

    def test_k_one_still_costs_a_scan(self):
        partitions = make_partitions([100])
        assert layer_costs(partitions, [1])[0] == pytest.approx(100.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            layer_costs(make_partitions([10, 10]), [1])


class TestAllocateLayers:
    def test_bin_packing_assigns_every_layer_once(self):
        costs = [50.0, 10.0, 40.0, 5.0, 25.0]
        result = allocate_layers(costs, 2)
        assert sorted(i for items in result.assignment for i in items) == list(range(5))

    def test_bin_packing_balances_load(self):
        costs = [100.0, 1.0, 1.0, 1.0, 1.0, 96.0]
        balanced = allocate_layers(costs, 2, AllocationPolicy.BIN_PACKING)
        round_robin = allocate_layers(costs, 2, AllocationPolicy.ROUND_ROBIN)
        assert balanced.max_load <= round_robin.max_load

    def test_round_robin_policy(self):
        costs = [1.0, 2.0, 3.0, 4.0]
        result = allocate_layers(costs, 2, AllocationPolicy.ROUND_ROBIN)
        assert result.assignment[0] == [0, 2]
        assert result.assignment[1] == [1, 3]

    def test_size_only_policy_requires_sizes(self):
        with pytest.raises(ValueError):
            allocate_layers([1.0, 2.0], 2, AllocationPolicy.SIZE_ONLY)

    def test_size_only_policy_reports_cost_loads(self):
        costs = [10.0, 20.0]
        sizes = [100, 100]
        result = allocate_layers(costs, 2, AllocationPolicy.SIZE_ONLY, sizes=sizes)
        assert sorted(i for items in result.assignment for i in items) == [0, 1]
        assert sum(result.loads) == pytest.approx(30.0)

    def test_policy_accepts_string(self):
        result = allocate_layers([1.0, 2.0], 2, "round_robin")
        assert result.n_bins == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            allocate_layers([1.0], 1, "not_a_policy")

    def test_deterministic(self):
        costs = list(np.random.default_rng(0).random(20) * 100)
        a = allocate_layers(costs, 4).assignment
        b = allocate_layers(costs, 4).assignment
        assert a == b


class TestAllocationPayload:
    def test_counts_one_element_per_layer(self):
        assignment = [[0, 2], [1], [3, 4, 5]]
        assert allocation_payload_elements(assignment) == 6


class TestEndToEndAllocation:
    def test_realistic_pipeline_is_balanced(self):
        """Partition -> assign k -> cost -> allocate on a realistic layout:
        the resulting max worker load should be within 2x of the mean."""
        rng = np.random.default_rng(0)
        sizes = [3200, 768, 768, 96, 1280, 200, 64, 64]
        n_workers = 4
        partitions = make_partitions(sizes, n_workers)
        flat = rng.standard_normal(sum(sizes))
        norms = [p.norm(flat) for p in partitions]
        ks = assign_local_k(partitions, norms, int(0.01 * sum(sizes)))
        costs = layer_costs(partitions, ks)
        result = allocate_layers(costs, n_workers)
        mean_load = sum(result.loads) / n_workers
        assert result.max_load <= 2.0 * mean_load + max(costs)


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
@given(
    costs=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=50),
    n_workers=st.integers(1, 16),
    policy=st.sampled_from([AllocationPolicy.BIN_PACKING, AllocationPolicy.ROUND_ROBIN]),
)
@settings(max_examples=80, deadline=None)
def test_every_layer_allocated_exactly_once(costs, n_workers, policy):
    """No layer may be dropped or duplicated, or gradients would be lost or
    double-counted (breaking DEFT's no-build-up guarantee)."""
    result = allocate_layers(costs, n_workers, policy)
    allocated = sorted(i for items in result.assignment for i in items)
    assert allocated == list(range(len(costs)))


@given(
    costs=st.lists(st.floats(0.1, 1e4, allow_nan=False), min_size=2, max_size=40),
    n_workers=st.integers(2, 8),
)
@settings(max_examples=60, deadline=None)
def test_bin_packing_max_load_bounded(costs, n_workers):
    """Greedy packing's makespan never exceeds mean load + one item."""
    result = allocate_layers(costs, n_workers, AllocationPolicy.BIN_PACKING)
    assert result.max_load <= sum(costs) / n_workers + max(costs) + 1e-6
