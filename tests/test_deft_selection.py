"""Tests for Algorithm 5: layer-wise gradient selection."""

import numpy as np
import pytest

from repro.sparsifiers.base import GradientLayout
from repro.sparsifiers.deft.k_assignment import assign_local_k, layer_norms
from repro.sparsifiers.deft.partitioning import two_stage_partition
from repro.sparsifiers.deft.selection import layerwise_select
from repro.utils.topk_ops import topk_indices


def make_problem(sizes, seed=0, n_workers=1):
    layout = GradientLayout.from_named_shapes([(f"l{i}", (s,)) for i, s in enumerate(sizes)])
    partitions = two_stage_partition(layout, n_workers)
    flat = np.random.default_rng(seed).standard_normal(layout.total_size)
    return layout, partitions, flat


class TestLayerwiseSelect:
    def test_indices_fall_inside_allocated_partitions(self):
        _, partitions, flat = make_problem([30, 40, 50])
        ks = [3, 4, 5]
        indices, _, _ = layerwise_select(flat, partitions, ks, allocated=[1])
        assert ((indices >= partitions[1].start) & (indices < partitions[1].end)).all()

    def test_selects_top_k_within_each_partition(self):
        _, partitions, flat = make_problem([30, 40])
        ks = [5, 7]
        indices, _, _ = layerwise_select(flat, partitions, ks, allocated=[0, 1])
        for part, k in zip(partitions, ks):
            segment = flat[part.start : part.end]
            expected = set((topk_indices(segment, k) + part.start).tolist())
            selected_here = set(i for i in indices.tolist() if part.start <= i < part.end)
            assert selected_here == expected

    def test_k_target_sums_allocated_ks(self):
        _, partitions, flat = make_problem([30, 40, 50])
        ks = [3, 4, 5]
        _, k_target, _ = layerwise_select(flat, partitions, ks, allocated=[0, 2])
        assert k_target == 8

    def test_zero_k_partitions_skipped(self):
        _, partitions, flat = make_problem([30, 40])
        indices, k_target, cost = layerwise_select(flat, partitions, [0, 4], allocated=[0, 1])
        assert k_target == 4
        assert ((indices >= partitions[1].start) & (indices < partitions[1].end)).all()

    def test_empty_allocation_returns_empty(self):
        _, partitions, flat = make_problem([30])
        indices, k_target, cost = layerwise_select(flat, partitions, [5], allocated=[])
        assert indices.size == 0
        assert k_target == 0
        assert cost == 0.0

    def test_analytic_cost_matches_formula(self):
        _, partitions, flat = make_problem([64, 128])
        ks = [8, 4]
        _, _, cost = layerwise_select(flat, partitions, ks, allocated=[0, 1])
        expected = 64 * np.log2(8) + 128 * np.log2(4)
        assert cost == pytest.approx(expected)

    def test_k_capped_by_partition_size(self):
        _, partitions, flat = make_problem([10])
        indices, k_target, _ = layerwise_select(flat, partitions, [99], allocated=[0])
        assert indices.size == 10
        assert k_target == 10

    def test_no_duplicate_indices(self):
        _, partitions, flat = make_problem([30, 40, 50], n_workers=2)
        ks = [2] * len(partitions)
        indices, _, _ = layerwise_select(flat, partitions, ks, allocated=list(range(len(partitions))))
        assert np.unique(indices).size == indices.size


class TestDisjointnessAcrossWorkers:
    def test_union_over_workers_is_disjoint(self):
        """The core no-build-up property: with an allocation that partitions
        the layer set, workers' selections never overlap."""
        _, partitions, flat = make_problem([100, 200, 50, 75, 30], seed=3, n_workers=3)
        norms = layer_norms(flat, partitions)
        ks = assign_local_k(partitions, norms, 40)
        # Simple 3-way split of the partition indices.
        allocation = [list(range(0, len(partitions), 3)), list(range(1, len(partitions), 3)), list(range(2, len(partitions), 3))]
        all_indices = []
        for rank in range(3):
            # Each worker sees a *different* accumulator (different noise)
            # but selects only inside its own partitions.
            worker_flat = flat + 0.01 * np.random.default_rng(rank).standard_normal(flat.size)
            idx, _, _ = layerwise_select(worker_flat, partitions, ks, allocation[rank])
            all_indices.append(idx)
        union = np.concatenate(all_indices)
        assert np.unique(union).size == union.size
