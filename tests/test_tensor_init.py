"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.tensor.init import (
    calculate_fan,
    kaiming_normal,
    kaiming_uniform,
    normal,
    ones,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)


class TestCalculateFan:
    def test_linear_shape(self):
        assert calculate_fan((10, 20)) == (20, 10)

    def test_conv_shape(self):
        fan_in, fan_out = calculate_fan((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9

    def test_vector_shape(self):
        assert calculate_fan((7,)) == (7, 7)

    def test_empty_shape_raises(self):
        with pytest.raises(ValueError):
            calculate_fan(())


class TestDistributions:
    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((50, 100), rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = xavier_normal((200, 300), rng=rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.1)

    def test_kaiming_uniform_bound_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        small_fan = kaiming_uniform((10, 4), rng=rng)
        large_fan = kaiming_uniform((10, 400), rng=rng)
        assert np.abs(small_fan).max() > np.abs(large_fan).max()

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((100, 200), rng=rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.1)

    def test_uniform_range(self):
        w = uniform((1000,), -0.2, 0.2, rng=np.random.default_rng(1))
        assert w.min() >= -0.2 and w.max() < 0.2

    def test_normal_moments(self):
        w = normal((20000,), mean=1.0, std=0.5, rng=np.random.default_rng(2))
        assert w.mean() == pytest.approx(1.0, abs=0.02)
        assert w.std() == pytest.approx(0.5, abs=0.02)

    def test_zeros_and_ones(self):
        assert zeros((3, 2)).sum() == 0.0
        assert ones((3, 2)).sum() == 6.0

    def test_default_dtype_is_float32(self):
        assert xavier_uniform((3, 3)).dtype == np.float32
        assert kaiming_normal((3, 3)).dtype == np.float32

    def test_reproducible_with_same_rng_seed(self):
        a = kaiming_uniform((4, 4), rng=np.random.default_rng(5))
        b = kaiming_uniform((4, 4), rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
