"""Tests for the sweep engine: grids, cache, and parallel dispatch."""

import json

import pytest

from repro.api import RunSpec, Session
from repro.api.result import RunResult
from repro.experiments import robustness_grid
from repro.sweep import (
    CACHE_VERSION,
    ResultCache,
    expand_grid,
    load_grid,
    run_sweep,
    spec_key,
    spec_refusal,
)


def tiny_spec(**overrides) -> RunSpec:
    """A seconds-scale LM spec; overrides patch the top-level dict form."""
    base = {
        "workload": "lm",
        "cluster": {"n_workers": 2},
        "optimizer": {"epochs": 1, "max_iterations_per_epoch": 2},
        "compression": {"sparsifier": "deft", "density": 0.05},
    }
    data = dict(base)
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(data.get(key), dict):
            merged = dict(data[key])
            merged.update(value)
            data[key] = merged
        else:
            data[key] = value
    return RunSpec.from_dict(data)


TINY_BASE = {
    "workload": "lm",
    "cluster": {"n_workers": 2},
    "optimizer": {"epochs": 1, "max_iterations_per_epoch": 2},
    "compression": {"sparsifier": "deft", "density": 0.05},
}


# ---------------------------------------------------------------------- #
class TestGridExpansion:
    def test_explicit_specs_merge_over_base(self):
        expansion = expand_grid({
            "base": TINY_BASE,
            "specs": [{"seed": 1}, {"seed": 2, "compression": {"sparsifier": "topk"}}],
        })
        assert len(expansion.specs) == 2
        assert [spec.seed for spec in expansion.specs] == [1, 2]
        assert expansion.specs[0].compression.sparsifier == "deft"
        assert expansion.specs[1].compression.sparsifier == "topk"
        # base values survive the merge
        assert all(spec.cluster.n_workers == 2 for spec in expansion.specs)

    def test_cartesian_axes(self):
        expansion = expand_grid({
            "base": TINY_BASE,
            "axes": {
                "robustness.aggregator": ["mean", "median"],
                "seed": [0, 1, 2],
            },
        })
        assert len(expansion.specs) == 6
        combos = {(s.robustness.aggregator, s.seed) for s in expansion.specs}
        assert combos == {(a, s) for a in ("mean", "median") for s in (0, 1, 2)}

    def test_axes_cells_are_independent(self):
        """Axis values must not leak between cells via shared nested dicts."""
        expansion = expand_grid({
            "base": TINY_BASE,
            "axes": {"robustness.aggregator": ["mean", "krum"]},
        })
        assert [s.robustness.aggregator for s in expansion.specs] == ["mean", "krum"]

    def test_inventory_derived_axis(self):
        from repro.plugins import available_components

        expansion = expand_grid({
            "base": TINY_BASE,
            "axes": {"robustness.aggregator": {"components": "aggregator"}},
        })
        assert sorted(s.robustness.aggregator for s in expansion.specs) == sorted(
            available_components("aggregator")
        )

    def test_star_axis_shorthand(self):
        from repro.plugins import available_components

        expansion = expand_grid({
            "base": TINY_BASE,
            "axes": {"execution.model": "*"},
        })
        assert sorted(s.execution.model for s in expansion.specs) == sorted(
            available_components("execution")
        )

    def test_bare_base_is_one_cell(self):
        expansion = expand_grid({"base": TINY_BASE})
        assert len(expansion.specs) == 1

    def test_unknown_grid_key_rejected(self):
        with pytest.raises(ValueError, match="unknown grid keys"):
            expand_grid({"base": TINY_BASE, "cells": []})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty grid"):
            expand_grid({})

    def test_unknown_component_raises_not_prunes(self):
        with pytest.raises(KeyError):
            expand_grid({
                "base": TINY_BASE,
                "axes": {"robustness.aggregator": ["mean", "no_such_rule"]},
            })

    def test_load_grid_roundtrip(self, tmp_path):
        path = tmp_path / "grid.json"
        declared = {"base": TINY_BASE, "axes": {"seed": [0, 1]}}
        path.write_text(json.dumps(declared))
        assert load_grid(path) == declared


class TestCapabilityPruning:
    def test_invalid_cells_pruned_with_reason(self):
        expansion = expand_grid({
            "base": dict(TINY_BASE, cluster={"n_workers": 4},
                         robustness={"attack": "alie", "n_byzantine": 1}),
            "axes": {"execution.model": ["synchronous", "async_bsp"]},
        })
        assert [s.execution.model for s in expansion.specs] == ["synchronous"]
        assert len(expansion.pruned) == 1
        assert expansion.pruned[0].spec.execution.model == "async_bsp"
        assert "synchronized group view" in expansion.pruned[0].reason

    def test_spec_refusal_matches_resolve(self):
        spec = tiny_spec(
            cluster={"n_workers": 4},
            robustness={"attack": "sign_flip", "n_byzantine": 1},
            execution={"model": "elastic"},
        )
        reason = spec_refusal(spec)
        assert reason is not None
        with pytest.raises(ValueError, match="never exchanges"):
            spec.resolve()

    def test_valid_spec_has_no_refusal(self):
        assert spec_refusal(tiny_spec()) is None

    def test_robust_norms_cells_pruned_not_fatal(self):
        """A sparsifier axis with robust_norms prunes the unsupporting cells."""
        expansion = expand_grid({
            "base": dict(TINY_BASE, compression={"kwargs": {"robust_norms": True}}),
            "axes": {"compression.sparsifier": ["deft", "topk"]},
        })
        assert [s.compression.sparsifier for s in expansion.specs] == ["deft"]
        assert len(expansion.pruned) == 1
        assert "robust-norms is not supported" in expansion.pruned[0].reason

    def test_valid_grid_cells_helper(self):
        from repro.plugins import valid_grid_cells

        cells = list(valid_grid_cells(
            ["synchronous", "async_bsp", "elastic"],
            ["none", "alie", "sign_flip"],
            ["mean"],
            n_workers=4,
            n_byzantine=1,
        ))
        # none is hosted everywhere; alie needs a synchronized view (not
        # async); sign_flip corrupts accumulators (not elastic, which
        # exchanges parameters).
        assert ("synchronous", "alie", "mean") in cells
        assert ("async_bsp", "alie", "mean") not in cells
        assert ("elastic", "sign_flip", "mean") not in cells
        assert ("async_bsp", "none", "mean") in cells


# ---------------------------------------------------------------------- #
class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = tiny_spec()
        assert cache.get(spec) is None
        result = Session().run(spec)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.cached is True
        assert hit.to_dict() == result.to_dict()
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_key_is_resolution_invariant(self):
        explicit = tiny_spec()
        resolved = explicit.resolve()
        assert spec_key(explicit) == spec_key(resolved)

    def test_spec_change_changes_key(self):
        assert spec_key(tiny_spec()) != spec_key(tiny_spec(seed=1))
        assert spec_key(tiny_spec()) != spec_key(
            tiny_spec(robustness={"aggregator": "median"})
        )

    def test_cache_version_bump_invalidates(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(root=tmp_path, cache_version=CACHE_VERSION)
        cache.put(spec, Session().run(spec))
        bumped = ResultCache(root=tmp_path, cache_version=CACHE_VERSION + 1)
        assert bumped.get(spec) is None

    def test_stale_version_entry_dropped_on_read(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(root=tmp_path)
        path = cache.put(spec, Session().run(spec))
        payload = json.loads(path.read_text())
        payload["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert not path.exists()

    def test_corrupted_entry_recovered_as_miss(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(root=tmp_path)
        path = cache.put(spec, Session().run(spec))
        path.write_text("{truncated json")
        assert cache.get(spec) is None
        assert not path.exists()
        # a fresh put works again
        cache.put(spec, Session().run(spec))
        assert cache.get(spec) is not None

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(tiny_spec(), Session().run(tiny_spec()))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        cache = ResultCache()
        assert cache.root == tmp_path / "store"


class TestRunResultRoundTrip:
    def test_from_dict_roundtrips(self):
        result = Session().run(tiny_spec())
        data = result.to_dict()
        rehydrated = RunResult.from_dict(data)
        assert rehydrated.to_dict() == data
        assert rehydrated.cached is True
        assert rehydrated.final_metrics == result.final_metrics
        assert rehydrated.mean_density() == pytest.approx(result.mean_density())
        assert rehydrated.estimated_wallclock == result.estimated_wallclock
        assert rehydrated.iterations_run == result.iterations_run


# ---------------------------------------------------------------------- #
class TestRunSweep:
    def test_serial_outcomes_in_input_order(self):
        specs = [tiny_spec(seed=s) for s in (3, 1, 2)]
        report = run_sweep(specs)
        assert [o.spec.seed for o in report.outcomes] == [3, 1, 2]
        assert report.counts() == {"run": 3, "cache": 0, "error": 0}
        assert all(o.ok for o in report.outcomes)

    def test_cache_hits_skip_execution_entirely(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        first = run_sweep(specs, cache=cache)
        assert first.counts()["run"] == 2

        # A fully-cached re-run must execute zero training steps: fail the
        # sweep if anything reaches the trainer.
        from repro.training.trainer import DistributedTrainer

        def boom(self):
            raise AssertionError("cache hit must not train")

        monkeypatch.setattr(DistributedTrainer, "train", boom)
        second = run_sweep(specs, cache=cache)
        assert second.counts() == {"run": 0, "cache": 2, "error": 0}
        for fresh, cached in zip(first.outcomes, second.outcomes):
            assert cached.result.to_dict() == fresh.result.to_dict()

    def test_partial_cache_only_runs_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_sweep([tiny_spec(seed=0)], cache=cache)
        report = run_sweep([tiny_spec(seed=0), tiny_spec(seed=5)], cache=cache)
        assert report.counts() == {"run": 1, "cache": 1, "error": 0}
        assert report.outcomes[0].source == "cache"
        assert report.outcomes[1].source == "run"

    def test_failure_isolation(self):
        # density validation fires at sparsifier build time, inside the cell
        good = tiny_spec()
        bad = tiny_spec(compression={"sparsifier": "deft", "density": 7.0})
        report = run_sweep([bad, good])
        assert report.counts() == {"run": 1, "cache": 0, "error": 1}
        assert report.outcomes[0].error is not None
        assert "density" in report.outcomes[0].error
        assert report.outcomes[1].ok

    def test_progress_callback_sees_every_cell(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_sweep([tiny_spec(seed=0)], cache=cache)
        seen = []
        run_sweep(
            [tiny_spec(seed=0), tiny_spec(seed=9)],
            cache=cache,
            progress=lambda outcome: seen.append(outcome.source),
        )
        assert sorted(seen) == ["cache", "run"]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep([tiny_spec()], jobs=0)


class TestParallelDispatch:
    def test_parallel_bit_identical_to_serial(self):
        """A small robustness grid: every parallel cell must equal serial."""
        expansion = expand_grid({
            "base": dict(TINY_BASE, cluster={"n_workers": 4},
                         robustness={"attack": "sign_flip", "n_byzantine": 1}),
            "axes": {"robustness.aggregator": ["mean", "krum", "median"]},
        })
        serial = run_sweep(expansion.specs, jobs=1)
        parallel = run_sweep(expansion.specs, jobs=2)
        assert parallel.counts()["error"] == 0
        for s, p in zip(serial.outcomes, parallel.outcomes):
            assert p.result.to_dict() == s.result.to_dict()

    def test_parallel_failure_isolation(self):
        bad = tiny_spec(compression={"sparsifier": "deft", "density": 7.0})
        good = tiny_spec()
        report = run_sweep([bad, good], jobs=2)
        assert report.outcomes[0].error is not None
        assert report.outcomes[1].ok

    def test_parallel_fills_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        run_sweep(specs, jobs=2, cache=cache)
        assert len(cache) == 2
        report = run_sweep(specs, jobs=2, cache=cache)
        assert report.counts() == {"run": 0, "cache": 2, "error": 0}


# ---------------------------------------------------------------------- #
class TestJobClamp:
    """The oversubscription clamp: jobs never exceed what the host can run."""

    def test_clamped_to_cpu_count(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 2)
        specs = [tiny_spec(seed=s) for s in range(3)]
        report = run_sweep(specs, jobs=8)
        assert report.requested_jobs == 8
        assert report.jobs == 8  # back-compat: the requested count
        assert report.effective_jobs == 2
        assert "2 cpu" in report.clamp_reason

    def test_single_core_falls_back_to_serial(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 1)
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        report = run_sweep(specs, jobs=4)
        assert report.effective_jobs == 1
        assert report.clamp_reason is not None
        assert report.counts()["error"] == 0

    def test_unclamped_when_cores_suffice(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 8)
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        report = run_sweep(specs, jobs=2)
        assert report.effective_jobs == 2
        assert report.clamp_reason is None

    def test_multiprocess_cells_count_procs(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 8)
        specs = [
            tiny_spec(seed=s, execution={"backend": "multiprocess", "procs": 4})
            for s in range(4)
        ]
        effective, reason = engine._clamp_jobs(4, [s.resolve() for s in specs])
        assert effective == 2  # 8 cpus / 4-process cells
        assert "4-process" in reason

    def test_multiprocess_default_procs_weighted_by_workers(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 4)
        spec = tiny_spec(execution={"backend": "multiprocess"}).resolve()
        # procs=None resolves to min(n_workers=2, cpu=4) = 2 processes.
        assert engine._cell_weight(spec, 4) == 2
        effective, _ = engine._clamp_jobs(4, [spec, spec, spec])
        assert effective == 2

    def test_fewer_misses_than_jobs(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 8)
        report = run_sweep([tiny_spec()], jobs=4)
        assert report.effective_jobs == 1


class TestSessionPool:
    def test_executor_is_persistent(self):
        with Session() as session:
            pool = session.executor(2)
            assert session.executor(2) is pool

    def test_executor_resized_on_different_jobs(self):
        with Session() as session:
            pool = session.executor(2)
            resized = session.executor(3)
            assert resized is not pool

    def test_close_releases_and_reopens(self):
        session = Session()
        pool = session.executor(2)
        session.close()
        session.close()  # idempotent
        assert session.executor(2) is not pool
        session.close()

    def test_executor_rejects_bad_jobs(self):
        with Session() as session:
            with pytest.raises(ValueError):
                session.executor(0)

    def test_sweep_reuses_session_pool(self, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(engine.os, "cpu_count", lambda: 8)
        with Session() as session:
            first = run_sweep(
                [tiny_spec(seed=0), tiny_spec(seed=1)], jobs=2, session=session
            )
            pool = session._pool
            assert pool is not None
            second = run_sweep(
                [tiny_spec(seed=2), tiny_spec(seed=3)], jobs=2, session=session
            )
            assert session._pool is pool
        assert session._pool is None
        assert first.counts()["error"] == 0
        assert second.counts()["error"] == 0


# ---------------------------------------------------------------------- #
class TestGridDriversThroughSweep:
    def test_robustness_grid_prunes_and_reports_skipped(self):
        result = robustness_grid.run(
            scale="smoke",
            sparsifiers=("deft",),
            aggregators=("mean",),
            attacks=("none", "sign_flip"),
            n_workers=2,
            n_byzantine=1,
            epochs=1,
            max_iterations_per_epoch=2,
            execution="elastic",
        )
        cells = result["cells"]
        assert "deft|mean|none" in cells
        skipped = cells["deft|mean|sign_flip"]
        assert skipped["metric"] is None
        assert "never exchanges" in skipped["skipped"]
        assert "capability" in robustness_grid.format_report(result)

    def test_robustness_grid_uses_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        kwargs = dict(
            scale="smoke", sparsifiers=("deft",), aggregators=("mean",),
            attacks=("none",), n_workers=2, n_byzantine=0, epochs=1,
            max_iterations_per_epoch=2,
        )
        first = robustness_grid.run(cache=cache, **kwargs)
        assert cache.stats()["entries"] == 1
        second = robustness_grid.run(cache=cache, **kwargs)
        assert cache.hits >= 1
        assert second["cells"] == first["cells"]

    def test_session_task_cache_is_bounded(self):
        session = Session(max_cached_tasks=2)
        session.task_for("lm", "smoke", 0)
        session.task_for("lm", "smoke", 1)
        session.task_for("lm", "smoke", 2)
        assert len(session._tasks) == 2
        # LRU: seed 0 was evicted, seeds 1 and 2 remain
        assert ("lm", "smoke", 0) not in session._tasks
        # an evicted task is rebuilt, identically derived from its key
        rebuilt = session.task_for("lm", "smoke", 0)
        assert rebuilt is session.task_for("lm", "smoke", 0)
