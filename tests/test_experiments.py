"""Smoke tests for the experiment drivers (one per paper figure/table).

Each driver is run at tiny settings; the assertions check the *structure* of
the output (the series the paper's artefact needs) plus the qualitative
relationships that must hold even at smoke scale (e.g. Top-k's build-up).
"""

import numpy as np
import pytest

from repro.experiments import (
    config as expcfg,
    fig01_buildup,
    fig03_convergence,
    fig04_density,
    fig05_error,
    fig06_error_matched,
    fig07_breakdown,
    fig08_density_sweep,
    fig09_speedup,
    fig10_scaleout,
    table1_properties,
    table2_workloads,
)
from repro.experiments.runner import run_sparsifier_comparison, run_training


class TestConfig:
    def test_make_task_all_workloads(self):
        for workload in (expcfg.CV, expcfg.LM, expcfg.REC):
            task = expcfg.make_task(workload, scale="smoke", seed=0)
            assert task.train_dataset() is not None

    def test_unknown_workload_or_scale(self):
        with pytest.raises(KeyError):
            expcfg.make_task("speech", scale="smoke")
        with pytest.raises(KeyError):
            expcfg.make_task(expcfg.CV, scale="galactic")

    def test_paper_scale_refused(self):
        with pytest.raises(ValueError):
            expcfg.make_task(expcfg.CV, scale="paper")

    def test_default_densities_match_paper(self):
        assert expcfg.default_density(expcfg.CV) == 0.01
        assert expcfg.default_density(expcfg.LM) == 0.001
        assert expcfg.default_density(expcfg.REC) == 0.1

    def test_paper_workload_table_complete(self):
        assert set(expcfg.PAPER_WORKLOADS) == {expcfg.CV, expcfg.LM, expcfg.REC}
        for desc in expcfg.PAPER_WORKLOADS.values():
            assert desc.paper_model and desc.repro_model


class TestRunner:
    def test_run_training_returns_series(self):
        result = run_training(expcfg.LM, "deft", density=0.05, n_workers=2, scale="smoke",
                              epochs=1, max_iterations_per_epoch=2)
        assert len(result.logger.series("density")) == 2

    def test_comparison_shares_task(self):
        results = run_sparsifier_comparison(
            expcfg.LM, ("deft", "topk"), density=0.05, n_workers=2, scale="smoke",
            epochs=1, max_iterations_per_epoch=2,
        )
        assert set(results) == {"deft", "topk"}


class TestFig01:
    def test_buildup_increases_with_workers(self):
        result = fig01_buildup.run(scale="smoke", worker_counts=(2, 4), epochs=1,
                                   max_iterations_per_epoch=3)
        stats2 = result["per_worker_count"][2]["statistics"]
        stats4 = result["per_worker_count"][4]["statistics"]
        assert stats2["mean"] > result["configured_density"]
        assert stats4["mean"] > stats2["mean"]
        assert "Figure 1" in fig01_buildup.format_report(result)


class TestTable1:
    def test_rows_and_qualitative_agreement(self):
        result = table1_properties.run(scale="smoke", sparsifiers=("topk", "cltk", "deft"),
                                       n_workers=4, iterations=2)
        rows = {row["Sparsifier"]: row for row in result["rows"]}
        assert rows["topk"]["Gradient build-up"] == "Yes"
        assert rows["deft"]["Gradient build-up"] == "No"
        assert rows["cltk"]["Worker idling"] == "Yes"
        assert "Table 1" in table1_properties.format_report(result)

    def test_paper_reference_rows_included(self):
        result = table1_properties.run(scale="smoke", sparsifiers=("deft",), n_workers=2, iterations=1)
        assert result["paper_rows"]["deft"]["Gradient build-up"] == "No"


class TestTable2:
    def test_rows_for_all_workloads(self):
        result = table2_workloads.run(scale="smoke")
        assert len(result["rows"]) == 3
        for row in result["rows"]:
            assert row["repro_parameters"] > 0
            assert row["repro_layers"] > 1
        assert "Table 2" in table2_workloads.format_report(result)


class TestFig03:
    def test_single_workload_series(self):
        result = fig03_convergence.run_workload(
            expcfg.LM, scale="smoke", sparsifiers=("deft", "dense"), n_workers=2,
            epochs=1, max_iterations_per_epoch=3,
        )
        assert result["metric"] == "perplexity"
        assert set(result["series"]) == {"deft", "dense"}
        assert result["series"]["deft"]["final"] is not None

    def test_multi_panel_report(self):
        result = fig03_convergence.run(
            scale="smoke", workloads=(expcfg.REC,), sparsifiers=("deft",), n_workers=2,
            max_iterations_per_epoch=2,
        )
        assert expcfg.REC in result["panels"]
        assert "Figure 3" in fig03_convergence.format_report(result)


class TestFig04:
    def test_density_ordering(self):
        result = fig04_density.run_workload(
            expcfg.LM, scale="smoke", sparsifiers=("deft", "topk"), density=0.05,
            n_workers=4, epochs=1, max_iterations_per_epoch=3,
        )
        deft_mean = result["traces"]["deft"]["statistics"]["mean"]
        topk_mean = result["traces"]["topk"]["statistics"]["mean"]
        assert topk_mean > deft_mean
        assert deft_mean == pytest.approx(0.05, rel=0.35)
        assert "Figure 4" in fig04_density.format_report(result)


class TestFig05:
    def test_topk_error_not_higher_than_deft(self):
        result = fig05_error.run_workload(
            expcfg.LM, scale="smoke", sparsifiers=("deft", "topk"), density=0.05,
            n_workers=4, epochs=1, max_iterations_per_epoch=4,
        )
        deft_error = result["traces"]["deft"]["mean_error"]
        topk_error = result["traces"]["topk"]["mean_error"]
        # Top-k transmits more gradients (build-up), so its error is lower.
        assert topk_error <= deft_error + 1e-9
        assert "Figure 5" in fig05_error.format_report(result)


class TestFig06:
    def test_matched_density_brings_errors_close(self):
        result = fig06_error_matched.run_workload(
            expcfg.LM, scale="smoke", n_workers=4, epochs=1, max_iterations_per_epoch=4,
        )
        deft = result["traces"]["deft"]
        topk = result["traces"]["topk"]
        assert deft["mean_actual_density"] > result["topk_density"]
        assert "Figure 6" in fig06_error_matched.format_report(result)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            fig06_error_matched.run_workload(expcfg.REC, scale="smoke")


class TestFig07:
    def test_breakdown_structure(self):
        result = fig07_breakdown.run(scale="smoke", sparsifiers=("deft", "topk"), n_workers=2,
                                     max_iterations_per_epoch=3)
        for name in ("deft", "topk"):
            breakdown = result["breakdowns"][name]
            assert breakdown["total"] > 0
            assert set(breakdown) >= {"forward", "backward", "selection", "communication", "partition"}
        # Only DEFT pays the partition/allocation overhead.
        assert result["breakdowns"]["deft"]["partition"] > 0
        assert result["breakdowns"]["topk"]["partition"] == 0.0
        assert "Figure 7" in fig07_breakdown.format_report(result)

    def test_deft_analytic_selection_cost_lower_than_topk(self):
        result = fig07_breakdown.run(scale="smoke", sparsifiers=("deft", "topk"), n_workers=4,
                                     max_iterations_per_epoch=3)
        assert (
            result["breakdowns"]["deft"]["selection_cost_analytic"]
            < result["breakdowns"]["topk"]["selection_cost_analytic"]
        )


class TestFig08:
    def test_density_sweep_series(self):
        result = fig08_density_sweep.run(scale="smoke", densities=(0.1, 0.01), n_workers=2,
                                         epochs=1, max_iterations_per_epoch=3)
        assert "density=0.1" in result["series"]
        assert "non-sparsified" in result["series"]
        assert result["series"]["density=0.1"]["mean_actual_density"] > result["series"]["density=0.01"]["mean_actual_density"]
        assert "Figure 8" in fig08_density_sweep.format_report(result)


class TestFig09:
    def test_speedup_curves_ordering(self):
        result = fig09_speedup.run(scale="smoke", worker_counts=(1, 2, 4, 8), measure_wallclock=False)
        curves = result["curves"]
        for n in (2, 4, 8):
            assert curves["trivial"][n] >= curves["linear"][n] - 1e-9
            assert curves["deft_analytic"][n] >= curves["linear"][n] - 1e-9
        assert curves["deft_analytic"][8] > curves["deft_analytic"][2]
        assert "Figure 9" in fig09_speedup.format_report(result)

    def test_gradient_snapshot_shapes(self):
        layout, flat = fig09_speedup.gradient_snapshot(expcfg.LM, "smoke", seed=0)
        assert flat.size == layout.total_size
        assert np.abs(flat).sum() > 0


class TestFig10:
    def test_scaleout_series(self):
        result = fig10_scaleout.run(scale="smoke", worker_counts=(2, 4), density=0.01,
                                    epochs=1, max_iterations_per_epoch=3)
        assert "workers=2" in result["series"]
        assert "workers=4" in result["series"]
        assert "non-sparsified" in result["series"]
        for data in result["series"].values():
            assert data["final"] is not None
        assert "Figure 10" in fig10_scaleout.format_report(result)
