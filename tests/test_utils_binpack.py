"""Tests for the bin-packing heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.binpack import (
    BinPackingResult,
    pack_first_fit_decreasing,
    pack_greedy_min_bin,
    pack_lpt,
    pack_round_robin,
)


class TestGreedyMinBin:
    def test_all_items_assigned_exactly_once(self):
        result = pack_greedy_min_bin([5, 3, 2, 7, 1], 2)
        assigned = sorted(result.items_flat())
        assert assigned == [0, 1, 2, 3, 4]

    def test_loads_match_assignment(self):
        weights = [5.0, 3.0, 2.0, 7.0, 1.0]
        result = pack_greedy_min_bin(weights, 3)
        for b, items in enumerate(result.assignment):
            assert result.loads[b] == pytest.approx(sum(weights[i] for i in items))

    def test_heaviest_item_goes_first(self):
        result = pack_greedy_min_bin([1.0, 10.0, 2.0], 2)
        # The heaviest item (index 1) must be alone-ish in its bin initially.
        heavy_bin = result.bin_of(1)
        assert 1 in result.assignment[heavy_bin]

    def test_balances_better_than_round_robin_on_skewed_weights(self):
        weights = [100, 1, 1, 1, 1, 1, 1, 1]
        greedy = pack_greedy_min_bin(weights, 2)
        rr = pack_round_robin(weights, 2)
        assert greedy.max_load <= rr.max_load

    def test_single_bin_gets_everything(self):
        result = pack_greedy_min_bin([4, 2, 9], 1)
        assert sorted(result.assignment[0]) == [0, 1, 2]
        assert result.max_load == 15

    def test_more_bins_than_items_leaves_empty_bins(self):
        result = pack_greedy_min_bin([3.0, 1.0], 4)
        assert result.n_bins == 4
        assert sorted(result.items_flat()) == [0, 1]
        assert result.loads.count(0.0) == 2

    def test_deterministic(self):
        weights = list(np.random.default_rng(0).random(30))
        a = pack_greedy_min_bin(weights, 4).assignment
        b = pack_greedy_min_bin(weights, 4).assignment
        assert a == b

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            pack_greedy_min_bin([1.0, -2.0], 2)

    def test_zero_bins_rejected(self):
        with pytest.raises(ValueError):
            pack_greedy_min_bin([1.0], 0)

    def test_lpt_is_alias(self):
        weights = [4, 5, 6, 1, 2]
        assert pack_lpt(weights, 3).assignment == pack_greedy_min_bin(weights, 3).assignment


class TestRoundRobin:
    def test_item_i_goes_to_bin_i_mod_n(self):
        result = pack_round_robin([1, 1, 1, 1, 1], 2)
        assert result.assignment[0] == [0, 2, 4]
        assert result.assignment[1] == [1, 3]

    def test_loads_computed(self):
        result = pack_round_robin([2.0, 3.0, 4.0], 3)
        assert result.loads == [2.0, 3.0, 4.0]


class TestFirstFitDecreasing:
    def test_respects_capacity_when_possible(self):
        result = pack_first_fit_decreasing([4, 4, 4, 4], 2, capacity=8)
        assert max(result.loads) <= 8

    def test_overflows_to_lightest_bin_when_capacity_too_small(self):
        result = pack_first_fit_decreasing([10, 10, 10], 2, capacity=5)
        assert sorted(result.items_flat()) == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            pack_first_fit_decreasing([1.0], 2, capacity=0)


class TestBinPackingResult:
    def test_imbalance_of_balanced_assignment_is_one(self):
        result = pack_greedy_min_bin([1, 1, 1, 1], 4)
        assert result.imbalance == pytest.approx(1.0)

    def test_bin_of_missing_item_raises(self):
        result = pack_greedy_min_bin([1.0], 2)
        with pytest.raises(KeyError):
            result.bin_of(99)

    def test_empty_result_properties(self):
        result = BinPackingResult()
        assert result.max_load == 0.0
        assert result.min_load == 0.0
        assert result.imbalance == 1.0


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
weights_strategy = st.lists(st.floats(0.0, 1e4, allow_nan=False), min_size=1, max_size=60)


@given(weights=weights_strategy, n_bins=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_greedy_assignment_is_a_partition(weights, n_bins):
    """Every item is assigned to exactly one bin."""
    result = pack_greedy_min_bin(weights, n_bins)
    assert sorted(result.items_flat()) == list(range(len(weights)))


@given(weights=weights_strategy, n_bins=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_greedy_is_near_balanced(weights, n_bins):
    """The heaviest bin exceeds the mean load by at most one item's weight.

    (LPT/greedy is a heuristic, so it is *not* always better than
    round-robin on adversarial inputs, but this balance guarantee always
    holds and is what matters for Eq. 5's max-over-workers cost.)
    """
    result = pack_greedy_min_bin(weights, n_bins)
    mean_load = sum(weights) / n_bins
    assert result.max_load <= mean_load + max(weights) + 1e-6


@given(weights=weights_strategy, n_bins=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_greedy_makespan_list_scheduling_bound(weights, n_bins):
    """Greedy list scheduling guarantee: makespan <= total/m + max item.

    (When the final item lands in the eventually-heaviest bin, that bin was
    the lightest at the time, so its prior load was at most total/m.)
    """
    result = pack_greedy_min_bin(weights, n_bins)
    total = sum(weights)
    bound = total / n_bins + max(weights)
    assert result.max_load <= bound + 1e-6
