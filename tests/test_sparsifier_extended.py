"""Tests for the extended baselines: DGC, Gaussian-k and gTop-k."""

import numpy as np
import pytest

from repro.comm import SimulatedBackend
from repro.sparsifiers import DGCSparsifier, GaussianKSparsifier, GlobalTopKSparsifier
from repro.sparsifiers.gaussiank import _gaussian_two_sided_quantile
from repro.utils.topk_ops import topk_indices


class TestDGC:
    def test_selection_near_target_k(self, small_layout, rng):
        sparsifier = DGCSparsifier(0.05, sample_ratio=0.5)
        sparsifier.setup(small_layout, 2, seed=1)
        acc = rng.standard_normal(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        k = sparsifier.global_k
        assert k / 3 <= result.k_selected <= 3 * k

    def test_refinement_caps_overshoot(self, small_layout, rng):
        sparsifier = DGCSparsifier(0.05, sample_ratio=0.05, refine=True, overshoot_tolerance=1.0)
        sparsifier.setup(small_layout, 2, seed=1)
        acc = rng.standard_normal(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        assert result.k_selected <= sparsifier.global_k

    def test_no_refinement_can_overshoot(self, small_layout):
        sparsifier = DGCSparsifier(0.05, sample_ratio=0.02, refine=False)
        sparsifier.setup(small_layout, 2, seed=1)
        # A heavy-tailed accumulator makes the sampled threshold unreliable.
        rng = np.random.default_rng(0)
        acc = rng.standard_cauchy(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        assert result.k_selected >= 1

    def test_selected_values_are_large(self, small_layout, rng):
        sparsifier = DGCSparsifier(0.1, sample_ratio=0.5)
        sparsifier.setup(small_layout, 2, seed=2)
        acc = rng.standard_normal(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        selected_min = np.abs(acc[result.indices]).min()
        median = np.median(np.abs(acc))
        assert selected_min > median

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DGCSparsifier(0.1, sample_ratio=0.0)
        with pytest.raises(ValueError):
            DGCSparsifier(0.1, overshoot_tolerance=0.5)

    def test_reproducible_given_seed(self, small_layout, rng):
        acc = rng.standard_normal(small_layout.total_size)
        a = DGCSparsifier(0.05)
        b = DGCSparsifier(0.05)
        a.setup(small_layout, 2, seed=7)
        b.setup(small_layout, 2, seed=7)
        np.testing.assert_array_equal(a.select(3, 1, acc).indices, b.select(3, 1, acc).indices)

    def test_table1_style_metadata(self):
        sparsifier = DGCSparsifier(0.1)
        assert sparsifier.has_gradient_buildup
        assert not sparsifier.has_worker_idling


class TestGaussianK:
    def test_quantile_helper(self):
        # 5% two-sided tail of a standard normal is ~1.96 sigma.
        assert _gaussian_two_sided_quantile(0.05) == pytest.approx(1.96, abs=0.01)

    def test_selection_close_to_k_for_gaussian_data(self, small_layout):
        sparsifier = GaussianKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        rng = np.random.default_rng(3)
        acc = rng.standard_normal(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        k = sparsifier.global_k
        assert 0.4 * k <= result.k_selected <= 2.5 * k

    def test_underselects_for_heavy_tailed_data(self, small_layout):
        """On heavy-tailed data the Gaussian fit overestimates the threshold
        -- the density unpredictability the paper criticises."""
        sparsifier = GaussianKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        rng = np.random.default_rng(4)
        acc = rng.standard_cauchy(small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        assert result.k_selected < sparsifier.global_k

    def test_threshold_reported(self, small_layout, small_acc):
        sparsifier = GaussianKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        assert result.info["threshold"] > 0
        assert result.info["sigma"] > 0


class TestGlobalTopK:
    def test_exactly_k_selected_globally(self, small_layout, rng):
        n_workers = 4
        sparsifier = GlobalTopKSparsifier(0.05)
        sparsifier.setup(small_layout, n_workers)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(n_workers)]
        sparsifier.coordinate(0, accs)
        union = set()
        for rank in range(n_workers):
            result = sparsifier.select(0, rank, accs[rank])
            union |= set(result.indices.tolist())
            assert result.k_selected == sparsifier.global_k
        assert len(union) == sparsifier.global_k

    def test_all_workers_share_the_same_indices(self, small_layout, rng):
        sparsifier = GlobalTopKSparsifier(0.05)
        sparsifier.setup(small_layout, 3)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(3)]
        sparsifier.coordinate(1, accs)
        reference = sparsifier.select(1, 0, accs[0]).indices
        for rank in (1, 2):
            np.testing.assert_array_equal(sparsifier.select(1, rank, accs[rank]).indices, reference)

    def test_keeps_largest_summed_contributions(self, small_layout):
        """The merge ranks candidates by |sum over workers|, so an index large
        on every worker beats one that is large on a single worker only."""
        n = small_layout.total_size
        acc_a = np.zeros(n)
        acc_b = np.zeros(n)
        acc_a[0] = 1.0
        acc_b[0] = 1.0      # index 0: moderate on both workers (sum 2.0)
        acc_a[1] = 1.5      # index 1: large on one worker only (sum 1.5)
        acc_a[2:12] = 0.01
        acc_b[2:12] = 0.01
        sparsifier = GlobalTopKSparsifier(1.0 / n)  # k == 1
        sparsifier.setup(small_layout, 2)
        sparsifier.coordinate(0, [acc_a, acc_b])
        result = sparsifier.select(0, 0, acc_a)
        assert result.indices.tolist() == [0]

    def test_candidate_gather_recorded(self, small_layout, rng):
        sparsifier = GlobalTopKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        backend = SimulatedBackend(2)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(2)]
        sparsifier.coordinate(0, accs, backend)
        assert backend.meter.call_count(op="allgather", tag="gtopk-candidates") == 1

    def test_standalone_fallback(self, small_layout, small_acc):
        sparsifier = GlobalTopKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        expected = set(topk_indices(small_acc, sparsifier.global_k).tolist())
        assert set(result.indices.tolist()) == expected

    def test_no_buildup_metadata(self):
        sparsifier = GlobalTopKSparsifier(0.1)
        assert not sparsifier.has_gradient_buildup
        assert not sparsifier.has_worker_idling


class TestExtendedBaselinesInTraining:
    @pytest.mark.parametrize("name", ["dgc", "gaussiank", "gtopk"])
    def test_short_training_run(self, name, smoke_lm_task):
        from repro.sparsifiers import build_sparsifier
        from repro.training.trainer import DistributedTrainer, TrainingConfig

        sparsifier = build_sparsifier(name, 0.05)
        config = TrainingConfig(n_workers=2, batch_size=8, epochs=1, lr=0.2, seed=0,
                                max_iterations_per_epoch=3, evaluate_each_epoch=False)
        result = DistributedTrainer(smoke_lm_task, sparsifier, config).train()
        assert np.isfinite(result.logger.series("loss").values).all()
        assert result.mean_density() > 0

    def test_gtopk_density_does_not_build_up(self, smoke_lm_task):
        from repro.sparsifiers import build_sparsifier
        from repro.training.trainer import DistributedTrainer, TrainingConfig

        sparsifier = build_sparsifier("gtopk", 0.05)
        config = TrainingConfig(n_workers=4, batch_size=8, epochs=1, lr=0.2, seed=0,
                                max_iterations_per_epoch=3, evaluate_each_epoch=False)
        result = DistributedTrainer(smoke_lm_task, sparsifier, config).train()
        assert result.mean_density() == pytest.approx(0.05, rel=0.1)
