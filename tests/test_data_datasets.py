"""Tests for dataset abstractions, loaders and sharding."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    shard_dataset,
    shard_indices,
)
from repro.data.dataset import SubsetDataset


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        assert ds[3] == (3, 6)

    def test_single_array_getitem_unwraps(self):
        ds = ArrayDataset(np.arange(5))
        assert ds[2] == 2

    def test_inconsistent_lengths_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))

    def test_empty_constructor_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_batch_gathers_rows(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 10)
        xs, ys = ds.batch([1, 4])
        np.testing.assert_array_equal(xs, [1, 4])
        np.testing.assert_array_equal(ys, [10, 40])

    def test_subset_view(self):
        ds = ArrayDataset(np.arange(10))
        sub = ds.subset([2, 5, 7])
        assert len(sub) == 3
        assert sub[1] == 5

    def test_subset_batch(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) + 100)
        sub = ds.subset([9, 0, 3])
        xs, ys = sub.batch([0, 2])
        np.testing.assert_array_equal(xs, [9, 3])
        np.testing.assert_array_equal(ys, [109, 103])

    def test_subset_of_subset(self):
        ds = ArrayDataset(np.arange(10))
        sub = ds.subset([5, 6, 7, 8]).subset([0, 3])
        assert isinstance(sub, SubsetDataset)
        assert [sub[i] for i in range(len(sub))] == [5, 8]


class TestDataLoader:
    def test_number_of_batches(self):
        ds = ArrayDataset(np.arange(10))
        assert len(DataLoader(ds, batch_size=3)) == 4
        assert len(DataLoader(ds, batch_size=3, drop_last=True)) == 3

    def test_batch_shapes(self):
        ds = ArrayDataset(np.zeros((10, 4)), np.zeros(10))
        batches = list(DataLoader(ds, batch_size=4))
        assert batches[0][0].shape == (4, 4)
        assert batches[-1][0].shape == (2, 4)

    def test_drop_last(self):
        ds = ArrayDataset(np.arange(10))
        batches = list(DataLoader(ds, batch_size=4, drop_last=True))
        assert len(batches) == 2
        assert all(b[0].shape[0] == 4 for b in batches)

    def test_covers_all_samples_without_shuffle(self):
        ds = ArrayDataset(np.arange(10))
        seen = np.concatenate([b[0] for b in DataLoader(ds, batch_size=3)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_shuffle_reproducible_with_rng(self):
        ds = ArrayDataset(np.arange(20))
        a = np.concatenate([b[0] for b in DataLoader(ds, batch_size=5, shuffle=True, rng=np.random.default_rng(3))])
        b = np.concatenate([b[0] for b in DataLoader(ds, batch_size=5, shuffle=True, rng=np.random.default_rng(3))])
        np.testing.assert_array_equal(a, b)

    def test_shuffle_changes_order(self):
        ds = ArrayDataset(np.arange(50))
        ordered = np.concatenate([b[0] for b in DataLoader(ds, batch_size=50)])
        shuffled = np.concatenate([b[0] for b in DataLoader(ds, batch_size=50, shuffle=True, rng=np.random.default_rng(0))])
        assert not np.array_equal(ordered, shuffled)
        np.testing.assert_array_equal(np.sort(shuffled), ordered)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(3)), batch_size=0)


class TestSharding:
    def test_shards_partition_the_dataset(self):
        shards = shard_indices(23, 4, seed=1)
        combined = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(combined, np.arange(23))

    def test_shards_are_nearly_equal(self):
        shards = shard_indices(23, 4, seed=1)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_rank_request(self):
        all_shards = shard_indices(20, 4, seed=2)
        rank2 = shard_indices(20, 4, rank=2, seed=2)
        np.testing.assert_array_equal(rank2, all_shards[2])

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            shard_indices(10, 4, rank=4)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            shard_indices(10, 0)

    def test_no_shuffle_gives_strided_shards(self):
        shards = shard_indices(8, 2, shuffle=False)
        np.testing.assert_array_equal(shards[0], [0, 2, 4, 6])
        np.testing.assert_array_equal(shards[1], [1, 3, 5, 7])

    def test_shard_dataset_returns_disjoint_views(self):
        ds = ArrayDataset(np.arange(30))
        shard_a = shard_dataset(ds, 3, 0, seed=5)
        shard_b = shard_dataset(ds, 3, 1, seed=5)
        values_a = {shard_a[i] for i in range(len(shard_a))}
        values_b = {shard_b[i] for i in range(len(shard_b))}
        assert values_a.isdisjoint(values_b)
