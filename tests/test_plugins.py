"""Tests for the unified component registry (:mod:`repro.plugins`)."""

import pytest

from repro.plugins import (
    REGISTRY,
    ComponentSpec,
    Kwarg,
    available_components,
    build_component,
    component_inventory,
    component_kinds,
    get_component,
    register_component,
)


class TestRegistryFramework:
    def test_all_kinds_registered(self):
        assert component_kinds() == [
            "aggregator", "attack", "backend", "execution", "model",
            "sparsifier", "topology",
        ]

    def test_available_matches_legacy_registries(self):
        from repro.aggregators import available_aggregators
        from repro.attacks import available_attacks
        from repro.execution import available_execution_models
        from repro.models import available_models
        from repro.sparsifiers import available_sparsifiers

        assert available_components("sparsifier") == available_sparsifiers()
        assert available_components("aggregator") == available_aggregators()
        assert available_components("attack") == available_attacks()
        assert available_components("execution") == available_execution_models()
        assert available_components("model") == available_models()

    def test_unknown_name_error_names_kind_and_alternatives(self):
        with pytest.raises(KeyError) as excinfo:
            get_component("sparsifier", "nonexistent")
        message = excinfo.value.args[0]
        assert "unknown sparsifier 'nonexistent'" in message
        assert "deft" in message

    def test_error_paths_shared_across_kinds(self):
        """All five kinds produce the same error shape from the one code path."""
        for kind in component_kinds():
            with pytest.raises(KeyError, match=f"unknown {kind} 'nope'"):
                get_component(kind, "nope")

    def test_duplicate_registration_rejected(self):
        spec = ComponentSpec(kind="aggregator", name="mean", builder=object)
        with pytest.raises(KeyError, match="already registered"):
            register_component(spec)

    def test_build_component_constructs(self):
        from repro.sparsifiers.topk import TopKSparsifier

        sparsifier = build_component("sparsifier", "topk", 0.05)
        assert isinstance(sparsifier, TopKSparsifier)
        assert sparsifier.density == 0.05

    def test_lookup_is_case_insensitive_like_legacy_builders(self):
        assert get_component("sparsifier", "TopK").name == "topk"

    def test_register_and_unregister_custom_component(self):
        class Probe:
            def __init__(self, marker=0):
                self.marker = marker

        register_component(ComponentSpec(
            kind="aggregator",
            name="_probe",
            builder=Probe,
            kwargs=(Kwarg("marker", "int", 0),),
        ))
        try:
            assert "_probe" in available_components("aggregator")
            built = build_component("aggregator", "_probe", marker=3)
            assert built.marker == 3
        finally:
            REGISTRY.unregister("aggregator", "_probe")
        assert "_probe" not in available_components("aggregator")


class TestKwargSchema:
    def test_coerce_kwargs_parses_cli_strings(self):
        spec = get_component("sparsifier", "dgc")
        coerced = spec.coerce_kwargs({"sample_ratio": "0.25", "refine": "false"})
        assert coerced == {"sample_ratio": 0.25, "refine": False}

    def test_unknown_kwarg_rejected_with_accepted_list(self):
        spec = get_component("sparsifier", "dgc")
        with pytest.raises(ValueError, match="sample_ratio"):
            spec.coerce_kwargs({"bogus": "1"})

    def test_bad_value_rejected(self):
        spec = get_component("sparsifier", "dgc")
        with pytest.raises(ValueError, match="refine"):
            spec.coerce_kwargs({"refine": "maybe"})

    def test_non_string_values_pass_through(self):
        spec = get_component("aggregator", "centered_clipping")
        assert spec.coerce_kwargs({"tau": 0.5}) == {"tau": 0.5}

    def test_bad_kwarg_type_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unsupported type"):
            Kwarg("x", "complex")


class TestCapabilities:
    def test_aggregator_gather_flags_match_classes(self):
        from repro.aggregators import build_aggregator

        for name in available_components("aggregator"):
            declared = get_component("aggregator", name).capability("requires_gather")
            assert declared == build_aggregator(name).requires_individual_contributions

    def test_attack_flags_match_classes(self):
        from repro.attacks import build_attack

        for name in available_components("attack"):
            spec = get_component("attack", name)
            attack = build_attack(name)
            assert spec.capability("colluding") == attack.colluding
            assert spec.capability("corrupts_data") == attack.corrupts_data

    def test_async_declares_staleness_weighted_default(self):
        from repro.plugins import default_aggregator_for

        assert default_aggregator_for("async_bsp") == "staleness_weighted_mean"
        assert default_aggregator_for("synchronous") == "mean"
        assert default_aggregator_for("local_sgd") == "mean"
        assert default_aggregator_for("elastic") == "mean"

    def test_elastic_declares_its_refusals(self):
        caps = get_component("execution", "elastic").capabilities
        assert caps["supports_momentum"] is False
        assert caps["exchanges_gradients"] is False

    def test_async_declares_no_synchronized_view(self):
        caps = get_component("execution", "async_bsp").capabilities
        assert caps["synchronized_view"] is False

    def test_only_deft_supports_robust_norms(self):
        robust = [
            name for name in available_components("sparsifier")
            if get_component("sparsifier", name).capability("supports_robust_norms")
        ]
        assert robust == ["deft"]


class TestInventory:
    def test_inventory_is_json_serialisable(self):
        import json

        text = json.dumps(component_inventory())
        assert "staleness_weighted_mean" in text

    def test_inventory_entries_carry_schema_and_capabilities(self):
        inventory = component_inventory()
        deft = next(e for e in inventory["sparsifier"] if e["name"] == "deft")
        assert {kw["name"] for kw in deft["kwargs"]} == {
            "allocation_policy", "norm_proportional_k", "two_stage", "robust_norms",
        }
        assert deft["capabilities"]["supports_robust_norms"] is True


class TestLegacyImportPaths:
    """The five historical registry locations must keep working verbatim."""

    def test_sparsifier_registry_imports(self):
        from repro.sparsifiers.registry import available_sparsifiers, build_sparsifier
        from repro.sparsifiers import available_sparsifiers as pkg_available

        assert build_sparsifier("topk", 0.01).name == "topk"
        assert available_sparsifiers() == pkg_available()

    def test_aggregator_registry_imports(self):
        from repro.aggregators.registry import available_aggregators, build_aggregator

        assert build_aggregator("krum", n_byzantine=1).name == "krum"
        assert "mean" in available_aggregators()

    def test_attack_registry_imports(self):
        from repro.attacks.registry import available_attacks, build_attack

        assert build_attack("sign_flip", n_byzantine=1, scale=2.0).name == "sign_flip"
        assert "alie" in available_attacks()

    def test_execution_registry_imports(self):
        from repro.execution.registry import (
            available_execution_models,
            build_execution_model,
        )

        assert build_execution_model("local_sgd", local_steps=2).name == "local_sgd"
        assert "async_bsp" in available_execution_models()

    def test_model_registry_imports(self):
        from repro.models.registry import available_models, build_model, register_model

        assert "mlp" in available_models()
        assert build_model("mlp") is not None
        with pytest.raises(KeyError):
            register_model("mlp", lambda rng=None: None)

    def test_legacy_unknown_name_messages_unchanged(self):
        from repro.aggregators import build_aggregator
        from repro.sparsifiers import build_sparsifier

        with pytest.raises(KeyError, match="unknown sparsifier 'zzz'"):
            build_sparsifier("zzz", 0.01)
        with pytest.raises(KeyError, match="unknown aggregator 'zzz'"):
            build_aggregator("zzz")
