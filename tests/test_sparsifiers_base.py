"""Tests for the Sparsifier base class, GradientLayout and the registry."""

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.sparsifiers import (
    CLTKSparsifier,
    DEFTSparsifier,
    DenseSparsifier,
    GradientLayout,
    HardThresholdSparsifier,
    RandomKSparsifier,
    SIDCoSparsifier,
    Sparsifier,
    TopKSparsifier,
    available_sparsifiers,
    build_sparsifier,
)


class TestGradientLayout:
    def test_from_named_shapes(self):
        layout = GradientLayout.from_named_shapes([("a", (3, 4)), ("b", (5,))])
        assert layout.n_layers == 2
        assert layout.total_size == 17
        assert layout.sizes == (12, 5)
        assert layout.offsets == (0, 12)

    def test_from_model(self):
        model = MLP(in_features=6, hidden_sizes=(4,), num_classes=3, rng=np.random.default_rng(0))
        layout = GradientLayout.from_model(model)
        assert layout.total_size == model.num_parameters()
        assert layout.n_layers == len(model.parameters())

    def test_slices_cover_vector(self, small_layout):
        slices = small_layout.slices()
        covered = sum(s.stop - s.start for s in slices)
        assert covered == small_layout.total_size
        assert slices[0].start == 0
        assert slices[-1].stop == small_layout.total_size

    def test_layer_norms(self, small_layout):
        flat = np.zeros(small_layout.total_size)
        flat[small_layout.offsets[2] : small_layout.offsets[2] + small_layout.sizes[2]] = 3.0
        norms = small_layout.layer_norms(flat)
        assert norms[2] > 0
        assert norms[0] == 0.0

    def test_layer_norms_wrong_length(self, small_layout):
        with pytest.raises(ValueError):
            small_layout.layer_norms(np.zeros(small_layout.total_size + 1))

    def test_scalar_parameter_has_size_one(self):
        layout = GradientLayout.from_named_shapes([("scalar", ())])
        assert layout.total_size == 1


class TestSparsifierBase:
    def test_invalid_density_rejected(self):
        for density in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                TopKSparsifier(density)

    def test_density_one_allowed(self):
        assert TopKSparsifier(1.0).density == 1.0

    def test_setup_required_before_use(self, small_acc):
        sparsifier = TopKSparsifier(0.1)
        with pytest.raises(RuntimeError):
            sparsifier.select(0, 0, small_acc)

    def test_setup_validates_workers(self, small_layout):
        with pytest.raises(ValueError):
            TopKSparsifier(0.1).setup(small_layout, 0)

    def test_global_k(self, small_layout):
        sparsifier = TopKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        assert sparsifier.global_k == max(1, round(0.1 * small_layout.total_size))

    def test_global_k_at_least_one(self, small_layout):
        sparsifier = TopKSparsifier(1e-9)
        sparsifier.setup(small_layout, 4)
        assert sparsifier.global_k == 1

    def test_describe_contains_metadata(self, small_layout):
        sparsifier = DEFTSparsifier(0.01)
        sparsifier.setup(small_layout, 2)
        description = sparsifier.describe()
        assert description["name"] == "deft"
        assert description["gradient_buildup"] is False

    def test_base_select_not_implemented(self, small_layout, small_acc):
        sparsifier = Sparsifier(0.5)
        sparsifier.setup(small_layout, 2)
        with pytest.raises(NotImplementedError):
            sparsifier.select(0, 0, small_acc)


class TestRegistry:
    def test_all_expected_names(self):
        assert set(available_sparsifiers()) == {
            "topk",
            "cltk",
            "hard_threshold",
            "sidco",
            "randomk",
            "dense",
            "deft",
            "dgc",
            "gaussiank",
            "gtopk",
        }

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("topk", TopKSparsifier),
            ("cltk", CLTKSparsifier),
            ("hard_threshold", HardThresholdSparsifier),
            ("sidco", SIDCoSparsifier),
            ("randomk", RandomKSparsifier),
            ("dense", DenseSparsifier),
            ("deft", DEFTSparsifier),
        ],
    )
    def test_builds_correct_type(self, name, cls):
        assert isinstance(build_sparsifier(name, 0.05), cls)

    def test_builds_extended_baselines(self):
        from repro.sparsifiers import DGCSparsifier, GaussianKSparsifier, GlobalTopKSparsifier

        assert isinstance(build_sparsifier("dgc", 0.05), DGCSparsifier)
        assert isinstance(build_sparsifier("gaussiank", 0.05), GaussianKSparsifier)
        assert isinstance(build_sparsifier("gtopk", 0.05), GlobalTopKSparsifier)

    def test_case_insensitive(self):
        assert isinstance(build_sparsifier("DEFT", 0.05), DEFTSparsifier)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_sparsifier("magic", 0.01)

    def test_kwargs_forwarded(self):
        sparsifier = build_sparsifier("hard_threshold", 0.01, threshold=0.5)
        assert sparsifier.threshold == 0.5

    def test_table1_metadata_matches_paper(self):
        """The class-level flags must agree with the paper's Table 1."""
        expectations = {
            "topk": (True, False, False),
            "cltk": (False, False, True),
            "hard_threshold": (True, True, False),
            "sidco": (True, False, False),
            "deft": (False, False, False),
        }
        for name, (buildup, tuning, idling) in expectations.items():
            sparsifier = build_sparsifier(name, 0.01)
            assert sparsifier.has_gradient_buildup is buildup, name
            assert sparsifier.needs_hyperparameter_tuning is tuning, name
            assert sparsifier.has_worker_idling is idling, name
