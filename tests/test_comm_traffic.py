"""Direct tests for the traffic meter and point-to-point server traffic.

The collective paths are exercised end-to-end by the trainer tests; this
module pins down the :class:`TrafficMeter` accounting API itself (tags,
filters, aggregation) and the parameter-server ``push``/``pull`` records
plus their alpha-beta pricing, which the async/elastic schedules rely on.
"""

import numpy as np
import pytest

from repro.comm import SimulatedBackend, TrafficMeter
from repro.comm.cost_model import AlphaBetaModel
from repro.comm.topology import ring_topology, star_topology, tree_topology
from repro.comm.traffic import CollectiveRecord


class TestCollectiveRecord:
    def test_totals(self):
        record = CollectiveRecord("allgather", [3, 5, 2], [10, 10, 10], tag="indices")
        assert record.total_sent == 10
        assert record.total_received == 30
        assert record.max_sent == 5

    def test_empty_record(self):
        record = CollectiveRecord("barrier", [], [])
        assert record.max_sent == 0
        assert record.total_sent == 0


class TestTrafficMeter:
    def make_meter(self):
        meter = TrafficMeter()
        meter.record("allgather", [4, 4], [8, 8], tag="indices")
        meter.record("allreduce", [16, 16], [16, 16], tag="values")
        meter.record("allgather", [2, 2], [4, 4], tag="indices")
        meter.record("broadcast", [6, 0], [6, 6], tag="allocation")
        return meter

    def test_total_sent_filters_by_op_and_tag(self):
        meter = self.make_meter()
        assert meter.total_sent() == 8 + 32 + 4 + 6
        assert meter.total_sent(op="allgather") == 12
        assert meter.total_sent(tag="indices") == 12
        assert meter.total_sent(op="allgather", tag="indices") == 12
        assert meter.total_sent(op="allreduce", tag="indices") == 0

    def test_total_received_filters(self):
        meter = self.make_meter()
        assert meter.total_received(tag="values") == 32
        assert meter.total_received(op="broadcast") == 12

    def test_call_count(self):
        meter = self.make_meter()
        assert meter.call_count() == 4
        assert meter.call_count(op="allgather") == 2
        assert meter.call_count(tag="allocation") == 1

    def test_by_tag_groups_sent_elements(self):
        grouped = self.make_meter().by_tag()
        assert grouped == {"indices": 12, "values": 32, "allocation": 6}

    def test_reset_clears_records(self):
        meter = self.make_meter()
        meter.reset()
        assert meter.records == []
        assert meter.total_sent() == 0

    def test_record_coerces_to_int(self):
        meter = TrafficMeter()
        entry = meter.record("allgather", [np.int64(3)], [np.float64(4.0)], tag="x")
        assert entry.sent_per_rank == [3]
        assert entry.received_per_rank == [4]


class TestPushPull:
    def test_push_records_only_sender(self):
        backend = SimulatedBackend(4)
        backend.push(2, 100, tag="ps-push")
        [record] = backend.meter.records
        assert record.op == "push"
        assert record.sent_per_rank == [0, 0, 100, 0]
        assert record.total_received == 0

    def test_pull_records_only_receiver(self):
        backend = SimulatedBackend(3)
        backend.pull(1, 50, tag="ps-pull")
        [record] = backend.meter.records
        assert record.op == "pull"
        assert record.received_per_rank == [0, 50, 0]
        assert record.total_sent == 0

    def test_out_of_range_rank_rejected(self):
        backend = SimulatedBackend(2)
        with pytest.raises(ValueError):
            backend.push(2, 10)
        with pytest.raises(ValueError):
            backend.pull(-1, 10)

    def test_negative_payload_rejected(self):
        backend = SimulatedBackend(2)
        with pytest.raises(ValueError):
            backend.push(0, -1)


class TestPointToPointCosts:
    def test_push_cost_formula(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        cost = model.push_cost(1000)
        assert cost.latency == pytest.approx(1e-5)
        assert cost.bandwidth == pytest.approx(1000 * 1e-9)
        assert model.pull_cost(1000).total == pytest.approx(cost.total)

    def test_zero_payload_costs_nothing(self):
        model = AlphaBetaModel()
        assert model.push_cost(0).total == 0.0
        assert model.pull_cost(0).total == 0.0

    def test_hops_scale_latency_only(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        near = model.point_to_point_cost(100, hops=1)
        far = model.point_to_point_cost(100, hops=4)
        assert far.latency == pytest.approx(4 * near.latency)
        assert far.bandwidth == pytest.approx(near.bandwidth)

    def test_topology_hops_compose_with_p2p_cost(self):
        """A star network's worker-to-server path is one hop; a ring's
        worst case is the diameter -- the latency scales accordingly."""
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        star = star_topology(8)
        ring = ring_topology(8)
        star_cost = model.push_cost(100, hops=star.path_hops(1, 0))
        ring_cost = model.push_cost(100, hops=ring.diameter_hops())
        assert ring_cost.latency > star_cost.latency

    def test_push_cheaper_than_allgather_for_same_payload(self):
        """One point-to-point message beats the 2(n-1)k all-gather term."""
        model = AlphaBetaModel()
        assert model.push_cost(1000).total < model.allgather_cost(8, 1000).total


class TestTopologyStatistics:
    def test_star_average_hops_exact(self):
        # n=5: 4 spoke pairs at 1 hop, 6 spoke-spoke pairs at 2 hops.
        assert star_topology(5).average_hops() == pytest.approx((4 * 1 + 6 * 2) / 10)

    def test_ring_latency_scale_is_diameter(self):
        topo = ring_topology(8)
        assert topo.latency_scale() == pytest.approx(topo.diameter_hops())
        assert topo.latency_scale() == pytest.approx(4.0)

    def test_tree_average_below_diameter(self):
        topo = tree_topology(16)
        assert topo.average_hops() < topo.diameter_hops()
