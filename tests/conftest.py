"""Shared fixtures for the DEFT reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsifiers.base import GradientLayout


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_layout() -> GradientLayout:
    """A layout with heterogeneous layer sizes (like a real model)."""
    return GradientLayout.from_named_shapes(
        [
            ("embedding.weight", (40, 8)),
            ("lstm.weight_ih", (32, 8)),
            ("lstm.weight_hh", (32, 8)),
            ("lstm.bias", (32,)),
            ("decoder.weight", (40, 8)),
            ("decoder.bias", (40,)),
        ]
    )


@pytest.fixture
def small_acc(rng, small_layout) -> np.ndarray:
    """A flat accumulator vector with per-layer scale differences."""
    flat = rng.standard_normal(small_layout.total_size)
    # Scale each layer differently so gradient norms genuinely differ.
    for i, (offset, size) in enumerate(zip(small_layout.offsets, small_layout.sizes)):
        flat[offset : offset + size] *= (i + 1) * 0.5
    return flat


@pytest.fixture
def tiny_mlp():
    """A tiny MLP with multiple layers, used by model-level tests."""
    from repro.models.mlp import MLP

    return MLP(in_features=12, hidden_sizes=(16, 8), num_classes=4, rng=np.random.default_rng(0))


def make_smoke_lm_task(seed: int = 0):
    """A very small language-modelling task for trainer-level tests."""
    from repro.training.tasks import LanguageModelingTask

    return LanguageModelingTask(
        vocab_size=60,
        train_tokens=2048,
        test_tokens=512,
        seq_len=8,
        embed_dim=12,
        hidden_dim=16,
        seed=seed,
    )


def make_smoke_image_task(seed: int = 0):
    """A very small image-classification task for trainer-level tests."""
    from repro.training.tasks import ImageClassificationTask

    return ImageClassificationTask(
        n_train=96, n_test=48, num_classes=4, image_size=8, model_scale="tiny", seed=seed
    )


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shm_segments():
    """Fail the session if any test leaks a repro-mp shared-memory segment.

    Every multiprocess-backend arena is named ``repro-mp-*``; whatever a
    test creates it must unlink (``close()`` is idempotent and registered
    atexit, so a leak here means a real cleanup bug, not test untidiness).
    """
    from repro.backends.shm import list_repro_segments

    before = set(list_repro_segments())
    yield
    leaked = set(list_repro_segments()) - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


@pytest.fixture
def smoke_lm_task():
    return make_smoke_lm_task()


@pytest.fixture
def smoke_image_task():
    return make_smoke_image_task()
