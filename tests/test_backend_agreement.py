"""Session-level agreement between the simulated and multiprocess backends.

The simulated backend is the deterministic oracle: every lock-step
schedule must produce bit-identical metrics and traffic regardless of
which backend executed the run.  The asynchronous schedules advance a
deterministic virtual clock (their asynchrony is simulated time, not
host-scheduling jitter), so they too must agree -- including the shape
of the observed-staleness distribution.
"""

import pytest

from repro.api import RunSpec, Session

LOCKSTEP_MODELS = ["synchronous", "local_sgd", "gossip"]
ASYNC_MODELS = ["async_bsp", "elastic"]


def _spec(model, seed, *, backend, profile="uniform", metrics=False):
    return RunSpec.from_dict(
        {
            "workload": "lm",
            "seed": seed,
            "cluster": {"n_workers": 2, "straggler_profile": profile},
            "optimizer": {"epochs": 1, "max_iterations_per_epoch": 3},
            "compression": {"sparsifier": "deft", "density": 0.1},
            "execution": {"model": model, "backend": backend},
            "observability": {"metrics": metrics},
        }
    )


def _run_pair(model, seed, **kwargs):
    """Run the same scenario on both backends inside one session."""
    with Session() as session:
        oracle = session.run(_spec(model, seed, backend="simulated", **kwargs))
        real = session.run(_spec(model, seed, backend="multiprocess", **kwargs))
    return oracle, real


class TestLockstepBitIdentity:
    @pytest.mark.parametrize("model", LOCKSTEP_MODELS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_final_metrics_and_traffic_identical(self, model, seed):
        oracle, real = _run_pair(model, seed)
        assert oracle.final_metrics == real.final_metrics
        assert oracle.traffic == real.traffic


class TestAsyncAgreement:
    @pytest.mark.parametrize("model", ASYNC_MODELS)
    def test_loss_and_traffic_agree(self, model):
        oracle, real = _run_pair(model, 0, profile="straggler")
        for name, value in oracle.final_metrics.items():
            assert real.final_metrics[name] == pytest.approx(value, rel=1e-9)
        assert oracle.traffic == real.traffic

    def test_staleness_distribution_agrees(self):
        oracle, real = _run_pair("async_bsp", 0, profile="straggler", metrics=True)
        def staleness(result):
            histograms = result.observability["metrics"]["histograms"]
            found = {k: v for k, v in histograms.items() if "staleness_observed" in k}
            assert found, f"no staleness histogram in {sorted(histograms)}"
            return found
        expected = staleness(oracle)
        actual = staleness(real)
        assert set(expected) == set(actual)
        for key, summary in expected.items():
            for stat in ("count", "mean", "p50", "p95"):
                assert actual[key][stat] == pytest.approx(summary[stat], rel=1e-9)


class TestBackendStamping:
    def test_ledger_entry_carries_backend_and_procs(self):
        with Session() as session:
            result = session.run(
                _spec("synchronous", 0, backend="multiprocess").resolve()
            )
        entry = result.to_ledger_entry()
        assert entry["run"]["backend"] == "multiprocess"
        assert entry["run"]["procs"] is None  # auto-sized
        oracle = Session().run(_spec("synchronous", 0, backend="simulated"))
        assert oracle.to_ledger_entry()["run"]["backend"] == "simulated"

    def test_backend_info_gauge_present(self):
        with Session() as session:
            result = session.run(
                _spec("synchronous", 0, backend="multiprocess", metrics=True)
            )
        gauges = result.observability["metrics"]["gauges"]
        keys = [k for k in gauges if "backend_info" in k and "multiprocess" in k]
        assert keys, f"backend_info gauge missing from {sorted(gauges)}"
        assert all(gauges[k] == 1.0 for k in keys)
