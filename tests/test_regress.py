"""Tests for the cross-run regression sentinel and its CLI surface."""

import json
import math

import pytest

from repro.api import RunSpec, Session
from repro.cli import main
from repro.observability import RunLedger
from repro.observability import regress


def entry(loss=1.0, wallclock=2.0, spec_key="k" * 16, **extra):
    base = {
        "spec_key": spec_key,
        "kind": "run",
        "source": "run",
        "metrics": {"loss": loss, "estimated_wallclock": wallclock},
        "phase_totals": {"compute": 1.5, "collective": 0.5},
        "traffic": {"total_sent_elements": 100, "calls": 10},
    }
    base.update(extra)
    return base


def tiny_spec(**overrides) -> RunSpec:
    base = {
        "workload": "lm",
        "cluster": {"n_workers": 2},
        "optimizer": {"epochs": 1, "max_iterations_per_epoch": 2},
        "compression": {"sparsifier": "deft", "density": 0.05},
    }
    data = dict(base)
    data.update(overrides)
    return RunSpec.from_dict(data)


# ---------------------------------------------------------------------- #
class TestComparableMetrics:
    def test_flattens_every_numeric_surface(self):
        flat = regress.comparable_metrics(entry())
        assert flat["loss"] == 1.0
        assert flat["phase_totals.compute"] == 1.5
        assert flat["traffic.total_sent_elements"] == 100.0
        assert flat["traffic.calls"] == 10.0

    def test_drops_non_numeric_and_booleans(self):
        e = entry()
        e["metrics"]["name"] = "text"
        e["metrics"]["flag"] = True
        flat = regress.comparable_metrics(e)
        assert "name" not in flat
        assert "flag" not in flat

    def test_host_seconds_never_compared(self):
        e = entry(host_seconds=123.0)
        assert "host_seconds" not in regress.comparable_metrics(e)

    def test_empty_entry(self):
        assert regress.comparable_metrics({"spec_key": "x"}) == {}


class TestRobustZ:
    def test_zero_for_matching_degenerate_history(self):
        assert regress.robust_z(5.0, [5.0, 5.0, 5.0]) == 0.0

    def test_inf_for_mismatching_degenerate_history(self):
        assert math.isinf(regress.robust_z(6.0, [5.0, 5.0, 5.0]))

    def test_scales_with_mad(self):
        history = [10.0, 11.0, 9.0, 10.5, 9.5]
        z_small = regress.robust_z(10.6, history)
        z_large = regress.robust_z(20.0, history)
        assert abs(z_small) < abs(z_large)
        assert z_large > 0
        assert regress.robust_z(5.0, history) < 0

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            regress.robust_z(1.0, [])


class TestCheckEntry:
    def test_identical_rerun_passes(self):
        report = regress.check_entry(entry(), [entry(), entry()])
        assert report.ok
        assert report.regressions == []
        assert len(report.verdicts) > 0

    def test_perturbed_metric_fails(self):
        report = regress.check_entry(entry(loss=1.5), [entry(), entry()])
        assert not report.ok
        assert [v.metric for v in report.regressions] == ["loss"]
        verdict = report.regressions[0]
        assert verdict.rel_delta == pytest.approx(0.5)
        assert math.isinf(verdict.z)
        assert "loss" in verdict.describe()

    def test_improvement_also_flagged(self):
        report = regress.check_entry(entry(wallclock=1.0), [entry(), entry()])
        assert [v.metric for v in report.regressions] == ["estimated_wallclock"]
        assert report.regressions[0].rel_delta < 0

    def test_small_deviation_within_rel_threshold_passes(self):
        report = regress.check_entry(entry(loss=1.04), [entry(), entry()])
        assert report.ok

    def test_noisy_history_requires_z_excursion(self):
        history = [entry(loss=value) for value in (0.9, 1.0, 1.1, 0.95, 1.05)]
        # 8% off the median but within the spread's z-threshold: passes.
        assert regress.check_entry(entry(loss=1.08), history).ok
        # Far outside both thresholds: fails.
        report = regress.check_entry(entry(loss=3.0), history)
        assert not report.ok

    def test_empty_history_is_ok_with_zero_n(self):
        report = regress.check_entry(entry(), [])
        assert report.ok
        assert report.n_history == 0
        assert report.verdicts == []

    def test_new_metric_in_candidate_skipped(self):
        candidate = entry()
        candidate["metrics"]["brand_new"] = 42.0
        report = regress.check_entry(candidate, [entry()])
        assert report.ok

    def test_ignore_list_respected(self):
        report = regress.check_entry(
            entry(loss=9.0), [entry()], ignore=("loss",)
        )
        assert report.ok

    def test_to_dict_names_regressions(self):
        payload = regress.check_entry(entry(loss=2.0), [entry()]).to_dict()
        assert payload["ok"] is False
        assert any("loss" in text for text in payload["regressions"])


class TestCheckLedger:
    def test_checks_every_candidate(self):
        candidates = {"a": entry(spec_key="a"), "b": entry(spec_key="b", loss=5.0)}
        baseline = {"a": [entry(spec_key="a")], "b": [entry(spec_key="b")]}
        reports = regress.check_ledger(candidates, baseline)
        by_key = {r.spec_key: r for r in reports}
        assert by_key["a"].ok
        assert not by_key["b"].ok

    def test_missing_baseline_yields_empty_report(self):
        reports = regress.check_ledger({"a": entry(spec_key="a")}, {})
        assert reports[0].n_history == 0
        assert reports[0].ok


class TestDiff:
    def test_diff_entries(self):
        diff = regress.diff_entries(entry(), entry(loss=2.0))
        assert diff["loss"]["delta"] == pytest.approx(1.0)
        assert diff["loss"]["rel"] == pytest.approx(1.0)
        assert diff["estimated_wallclock"]["delta"] == 0.0

    def test_one_sided_metrics_carry_none(self):
        a = entry()
        b = entry()
        del b["metrics"]["loss"]
        diff = regress.diff_entries(a, b)
        assert diff["loss"]["b"] is None
        assert diff["loss"]["delta"] is None

    def test_trace_entries_diff_like_ledger_entries(self):
        spec = tiny_spec(observability={"trace": True})
        result = Session().run(spec)
        trace = result.observability["trace"]
        pseudo = regress.entry_from_trace(trace)
        assert pseudo["spec_key"].startswith("trace:")
        assert pseudo["metrics"]["estimated_wallclock"] == pytest.approx(
            result.estimated_wallclock
        )
        diff = regress.diff_entries(pseudo, pseudo)
        assert diff["phase_totals.compute"]["delta"] == 0.0


# ---------------------------------------------------------------------- #
class TestCliExitCodes:
    def _ledgered_run(self, tmp_path, n=2):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        session = Session(ledger=ledger)
        for _ in range(n):
            session.run(tiny_spec())
        return path

    def test_check_identical_reruns_exit_zero(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path)
        assert main(["check", "--ledger", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_perturbed_exits_nonzero(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path)
        perturbed = json.loads(path.read_text().splitlines()[-1])
        perturbed["metrics"]["loss"] *= 2.0
        RunLedger(path).append(perturbed)
        assert main(["check", "--ledger", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "loss" in out

    def test_check_missing_ledger_exits_two(self, tmp_path, capsys):
        assert main(["check", "--ledger", str(tmp_path / "nope.jsonl")]) == 2

    def test_check_against_baseline_file(self, tmp_path, capsys):
        baseline = self._ledgered_run(tmp_path, n=1)
        candidate = tmp_path / "candidate.jsonl"
        Session(ledger=RunLedger(candidate)).run(tiny_spec())
        assert main([
            "check", "--ledger", str(candidate), "--baseline", str(baseline),
        ]) == 0

    def test_check_new_spec_passes_and_reported(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path, n=1)
        assert main(["check", "--ledger", str(path)]) == 0
        assert "new" in capsys.readouterr().out

    def test_check_json_output(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path)
        assert main(["check", "--ledger", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is True

    def test_runs_list_and_show(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path)
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries, 1 spec keys" in out
        key = json.loads(path.read_text().splitlines()[0])["spec_key"]
        assert main(["runs", "show", key[:12], "--ledger", str(path)]) == 0
        assert "loss" in capsys.readouterr().out

    def test_runs_show_unknown_key_exits_two(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path, n=1)
        assert main(["runs", "show", "zzzz", "--ledger", str(path)]) == 2

    def test_compare_ledger_refs(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path)
        key = json.loads(path.read_text().splitlines()[0])["spec_key"][:8]
        assert main([
            "compare", f"{key}:0", f"{key}:-1", "--ledger", str(path),
        ]) == 0
        assert "loss" in capsys.readouterr().out

    def test_compare_trace_files(self, tmp_path, capsys):
        spec = tiny_spec(observability={"trace": True})
        trace = Session().run(spec).observability["trace"]
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        assert main(["compare", str(path), str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diff"]["phase_totals.compute"]["delta"] == 0.0

    def test_compare_unknown_ref_exits_two(self, tmp_path, capsys):
        path = self._ledgered_run(tmp_path, n=1)
        assert main(["compare", "aaaa", "bbbb", "--ledger", str(path)]) == 2
