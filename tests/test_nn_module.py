"""Tests for the Module/Parameter base machinery."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(3, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.array([2.0], dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestParameterRegistration:
    def test_named_parameters_order_and_names(self):
        net = TinyNet()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_parameters_require_grad(self):
        net = TinyNet()
        assert all(p.requires_grad for p in net.parameters())

    def test_num_parameters(self):
        net = TinyNet()
        expected = 1 + (3 * 4 + 3) + (2 * 3 + 2)
        assert net.num_parameters() == expected

    def test_named_modules_includes_children(self):
        net = TinyNet()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_register_parameter_explicitly(self):
        module = Module()
        module.register_parameter("w", Parameter(np.zeros(3)))
        assert [n for n, _ in module.named_parameters()] == ["w"]


class TestTrainingMode:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestZeroGrad:
    def test_zero_grad_clears_all(self):
        net = TinyNet()
        x = Tensor(np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32))
        loss = (net(x) ** 2).sum()
        loss.backward()
        assert all(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net_a = TinyNet()
        net_b = TinyNet()
        # Perturb net_b so the two differ.
        for p in net_b.parameters():
            p.data = p.data + 1.0
        net_b.load_state_dict(net_a.state_dict())
        for pa, pb in zip(net_a.parameters(), net_b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_returns_copies(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.data[0] == 2.0

    def test_load_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_unknown_key_raises(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nonexistent": np.zeros(1)})

    def test_buffers_serialised(self):
        bn = nn.BatchNorm2d(3)
        bn.update_buffer("running_mean", np.array([1.0, 2.0, 3.0], dtype=np.float32))
        state = bn.state_dict()
        fresh = nn.BatchNorm2d(3)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, [1.0, 2.0, 3.0])


class TestBuffers:
    def test_update_unregistered_buffer_raises(self):
        module = Module()
        with pytest.raises(KeyError):
            module.update_buffer("missing", np.zeros(2))

    def test_named_buffers(self):
        bn = nn.BatchNorm2d(2)
        names = [n for n, _ in bn.named_buffers()]
        assert names == ["running_mean", "running_var"]


class TestForwardProtocol:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
