"""Unit tests for the simulated Byzantine attacks."""

import numpy as np
import pytest

from repro.attacks import (
    ALittleIsEnoughAttack,
    Adversary,
    NoAttack,
    available_attacks,
    build_attack,
)
from repro.attacks.alie import _normal_quantile


def make(name, n_workers=4, n_byzantine=1, n_gradients=32, seed=0, **kwargs):
    attack = build_attack(name, n_byzantine=n_byzantine, **kwargs)
    attack.setup(n_workers, n_gradients, seed=seed)
    return attack


def accumulators(rng, n_workers=4, n_gradients=32):
    return [rng.standard_normal(n_gradients) for _ in range(n_workers)]


class TestRegistry:
    def test_available_names(self):
        assert available_attacks() == ["alie", "gaussian_noise", "label_flip", "none", "sign_flip"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_attack("nonexistent")

    def test_kwargs_forwarded(self):
        assert build_attack("sign_flip", scale=2.0).scale == 2.0


class TestBase:
    def test_byzantine_ranks_are_last(self):
        attack = make("sign_flip", n_workers=5, n_byzantine=2)
        assert attack.byzantine_ranks == (3, 4)
        assert not attack.is_byzantine(0)
        assert attack.is_byzantine(4)

    def test_all_byzantine_rejected(self):
        attack = build_attack("sign_flip", n_byzantine=4)
        with pytest.raises(ValueError):
            attack.setup(4, 32)

    def test_none_forces_zero_byzantine(self):
        attack = make("none", n_byzantine=3)
        assert attack.n_byzantine == 0
        assert attack.byzantine_ranks == ()

    def test_none_hooks_are_identity(self, rng):
        attack = make("none")
        accs = accumulators(rng)
        out = attack.corrupt_accumulators(0, accs)
        for a, b in zip(accs, out):
            assert a is b
        batch = (np.arange(4), np.arange(4))
        assert attack.corrupt_batch(0, 0, batch) is batch


class TestSignFlip:
    def test_byzantine_accumulators_negated(self, rng):
        attack = make("sign_flip", n_byzantine=2, scale=3.0)
        accs = accumulators(rng)
        out = attack.corrupt_accumulators(0, accs)
        np.testing.assert_allclose(out[2], -3.0 * accs[2])
        np.testing.assert_allclose(out[3], -3.0 * accs[3])

    def test_benign_accumulators_untouched(self, rng):
        attack = make("sign_flip", n_byzantine=1)
        accs = accumulators(rng)
        out = attack.corrupt_accumulators(0, accs)
        assert out[0] is accs[0]
        assert out[1] is accs[1]
        assert out[2] is accs[2]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_attack("sign_flip", scale=0.0)


class TestGaussianNoise:
    def test_noise_added_to_byzantine_rank(self, rng):
        attack = make("gaussian_noise", n_byzantine=1, std=0.5)
        accs = accumulators(rng)
        out = attack.corrupt_accumulators(0, accs)
        assert not np.allclose(out[3], accs[3])
        assert np.allclose(out[0], accs[0])

    def test_replace_mode_discards_accumulator(self, rng):
        attack = make("gaussian_noise", n_byzantine=1, std=1.0, replace=True)
        acc = 1e6 * np.ones(32)
        out = attack.corrupt_accumulator(0, 3, acc)
        assert np.abs(out).max() < 1e3

    def test_deterministic_under_seed(self, rng):
        accs = accumulators(rng)
        out_a = make("gaussian_noise", seed=7).corrupt_accumulators(0, [a.copy() for a in accs])
        out_b = make("gaussian_noise", seed=7).corrupt_accumulators(0, [a.copy() for a in accs])
        np.testing.assert_allclose(out_a[3], out_b[3])


class TestLabelFlip:
    def test_flips_byzantine_labels_only(self):
        attack = make("label_flip", n_workers=2, n_byzantine=1, num_labels=10)
        batch = (np.zeros((4, 3)), np.array([0, 3, 9, 5]))
        benign = attack.corrupt_batch(0, 0, batch)
        assert benign is batch
        flipped = attack.corrupt_batch(0, 1, batch)
        np.testing.assert_array_equal(flipped[1], [9, 6, 0, 4])

    def test_dtype_preserved(self):
        attack = make("label_flip", n_workers=2, n_byzantine=1, num_labels=4)
        labels = np.array([0, 1, 2, 3], dtype=np.int32)
        flipped = attack.corrupt_batch(0, 1, (np.zeros(4), labels))
        assert flipped[1].dtype == np.int32

    def test_bound_inferred_from_batch(self):
        attack = make("label_flip", n_workers=2, n_byzantine=1)
        flipped = attack.corrupt_batch(0, 1, (np.zeros(3), np.array([0, 1, 2])))
        np.testing.assert_array_equal(flipped[1], [2, 1, 0])

    def test_corrupts_data_flag(self):
        assert build_attack("label_flip").corrupts_data is True
        assert build_attack("sign_flip").corrupts_data is False


class TestALIE:
    def test_normal_quantile_matches_known_values(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-8)
        assert _normal_quantile(0.8413447) == pytest.approx(1.0, abs=1e-4)
        assert _normal_quantile(0.9772499) == pytest.approx(2.0, abs=1e-4)

    def test_byzantine_send_mean_minus_z_std(self, rng):
        attack = make("alie", n_workers=6, n_byzantine=2, z=1.5)
        accs = accumulators(rng, n_workers=6)
        out = attack.corrupt_accumulators(0, accs)
        benign = np.stack(accs[:4])
        expected = benign.mean(axis=0) - 1.5 * benign.std(axis=0)
        np.testing.assert_allclose(out[4], expected)
        np.testing.assert_allclose(out[5], expected)

    def test_perturbation_within_benign_spread(self, rng):
        """The default z keeps the corruption inside the benign min/max on
        most coordinates -- that is the 'little is enough' stealth property."""
        attack = make("alie", n_workers=10, n_byzantine=2)
        accs = accumulators(rng, n_workers=10, n_gradients=512)
        out = attack.corrupt_accumulators(0, accs)
        benign = np.stack(accs[:8])
        inside = (out[9] >= benign.min(axis=0)) & (out[9] <= benign.max(axis=0))
        assert inside.mean() > 0.8

    def test_zero_byzantine_is_identity(self, rng):
        attack = make("alie", n_byzantine=0)
        accs = accumulators(rng)
        out = attack.corrupt_accumulators(0, accs)
        assert all(a is b for a, b in zip(accs, out))


class TestCustomAdversary:
    def test_default_hooks_identity(self, rng):
        adv = Adversary(n_byzantine=1)
        adv.setup(4, 32)
        accs = accumulators(rng)
        out = adv.corrupt_accumulators(0, accs)
        assert all(a is b for a, b in zip(accs, out))

    def test_no_attack_is_adversary(self):
        assert isinstance(NoAttack(), Adversary)
        assert isinstance(make("alie"), ALittleIsEnoughAttack)
