"""Integration tests for the distributed trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig


def run_short(task, sparsifier_name, density, n_workers=2, iterations=3, lr=0.2, seed=0, **sparsifier_kwargs):
    sparsifier = build_sparsifier(sparsifier_name, density, **sparsifier_kwargs)
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=1,
        lr=lr,
        seed=seed,
        max_iterations_per_epoch=iterations,
        evaluate_each_epoch=False,
    )
    trainer = DistributedTrainer(task, sparsifier, config)
    result = trainer.train()
    return trainer, result


class TestTrainerBasics:
    def test_runs_and_logs_series(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "deft", 0.05)
        assert result.iterations_run == 3
        for series in ("loss", "density", "error", "selection_seconds", "communication_seconds"):
            assert len(result.logger.series(series)) == 3

    def test_metadata_recorded(self, smoke_lm_task):
        trainer, result = run_short(smoke_lm_task, "topk", 0.05)
        assert result.logger.metadata["sparsifier"] == "topk"
        assert result.logger.metadata["n_gradients"] == trainer.n_gradients

    def test_backend_mismatch_rejected(self, smoke_lm_task):
        from repro.comm import SimulatedBackend

        sparsifier = build_sparsifier("topk", 0.05)
        config = TrainingConfig(n_workers=4)
        with pytest.raises(ValueError):
            DistributedTrainer(smoke_lm_task, sparsifier, config, backend=SimulatedBackend(2))

    def test_loss_decreases_over_training(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "dense", 1.0, n_workers=2, iterations=20, lr=0.5)
        losses = result.logger.series("loss").values
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_evaluation_metric_logged_per_epoch(self, smoke_lm_task):
        sparsifier = build_sparsifier("deft", 0.05)
        config = TrainingConfig(n_workers=2, batch_size=8, epochs=2, lr=0.2, seed=0, max_iterations_per_epoch=2)
        result = DistributedTrainer(smoke_lm_task, sparsifier, config).train()
        assert len(result.logger.series("perplexity")) == 2
        assert result.epochs_run == 2

    def test_timing_recorded_per_iteration(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "deft", 0.05)
        assert len(result.timing) == 3
        breakdown = result.timing.mean_breakdown()
        assert breakdown["forward"] > 0
        assert breakdown["communication"] > 0


class TestDensityBehaviour:
    def test_deft_density_matches_configuration(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "deft", 0.05, n_workers=4)
        density = result.mean_density()
        assert density == pytest.approx(0.05, rel=0.3)

    def test_cltk_density_matches_configuration(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "cltk", 0.05, n_workers=4)
        assert result.mean_density() == pytest.approx(0.05, rel=0.1)

    def test_topk_density_exceeds_configuration(self, smoke_lm_task):
        """Gradient build-up: the measured density of local Top-k exceeds the
        configured density once there is more than one worker."""
        _, result = run_short(smoke_lm_task, "topk", 0.05, n_workers=4)
        assert result.mean_density() > 0.05 * 1.3

    def test_topk_buildup_grows_with_workers(self, smoke_lm_task):
        _, result2 = run_short(smoke_lm_task, "topk", 0.05, n_workers=2)
        _, result8 = run_short(smoke_lm_task, "topk", 0.05, n_workers=8)
        assert result8.mean_density() > result2.mean_density()

    def test_dense_density_is_one(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "dense", 1.0)
        assert result.mean_density() == pytest.approx(1.0)

    def test_single_worker_topk_has_no_buildup(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "topk", 0.05, n_workers=1)
        assert result.mean_density() == pytest.approx(0.05, rel=0.05)


class TestErrorFeedbackBehaviour:
    def test_dense_training_has_zero_error(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "dense", 1.0)
        assert max(result.logger.series("error").values) == pytest.approx(0.0, abs=1e-12)

    def test_sparsified_training_has_positive_error(self, smoke_lm_task):
        _, result = run_short(smoke_lm_task, "deft", 0.05)
        assert result.logger.series("error").values[-1] > 0

    def test_higher_density_gives_lower_error(self, smoke_lm_task):
        _, low = run_short(smoke_lm_task, "deft", 0.01, iterations=5)
        _, high = run_short(smoke_lm_task, "deft", 0.3, iterations=5)
        assert high.logger.series("error").values[-1] < low.logger.series("error").values[-1]

    def test_error_metric_matches_memories(self, smoke_lm_task):
        trainer, result = run_short(smoke_lm_task, "deft", 0.05)
        expected = float(np.mean([m.error_norm() for m in trainer.memories]))
        assert result.logger.series("error").values[-1] == pytest.approx(expected)


class TestWorkerCountInvariance:
    def test_workers_stay_synchronised(self, smoke_image_task):
        """All simulated workers apply the same update, so after training the
        single shared model must be finite and the traffic per iteration must
        show every worker participating."""
        trainer, result = run_short(smoke_image_task, "deft", 0.05, n_workers=3, iterations=2)
        allgathers = [r for r in trainer.backend.meter.records if r.op == "allgather"]
        assert all(len(r.sent_per_rank) == 3 for r in allgathers)
        for p in trainer.model.parameters():
            assert np.isfinite(p.data).all()

    def test_reproducible_given_seed(self, smoke_lm_task):
        _, a = run_short(smoke_lm_task, "deft", 0.05, seed=5)
        _, b = run_short(smoke_lm_task, "deft", 0.05, seed=5)
        np.testing.assert_allclose(a.logger.series("loss").values, b.logger.series("loss").values)

    def test_different_seeds_differ(self, smoke_lm_task):
        _, a = run_short(smoke_lm_task, "deft", 0.05, seed=1)
        _, b = run_short(smoke_lm_task, "deft", 0.05, seed=2)
        assert not np.allclose(a.logger.series("loss").values, b.logger.series("loss").values)


class TestSparsifierEquivalences:
    def test_dense_equals_topk_with_density_one(self, smoke_lm_task):
        """With density 1.0 every sparsifier selects everything, so the
        training trajectory must match the dense reference bit-for-bit."""
        _, dense = run_short(smoke_lm_task, "dense", 1.0, iterations=4, seed=3)
        _, topk = run_short(smoke_lm_task, "topk", 1.0, iterations=4, seed=3)
        np.testing.assert_allclose(
            dense.logger.series("loss").values, topk.logger.series("loss").values, rtol=1e-6
        )

    def test_all_sparsifiers_produce_finite_models(self, smoke_image_task):
        for name in ("topk", "cltk", "deft", "hard_threshold", "sidco", "randomk"):
            trainer, result = run_short(smoke_image_task, name, 0.05, iterations=2)
            assert np.isfinite(result.logger.series("loss").values).all(), name
            for p in trainer.model.parameters():
                assert np.isfinite(p.data).all(), name


class TestCommunicationAccounting:
    def test_traffic_tags_present(self, smoke_lm_task):
        trainer, _ = run_short(smoke_lm_task, "deft", 0.05)
        tags = trainer.backend.meter.by_tag()
        assert "indices" in tags
        assert "values" in tags
        assert "deft-allocation" in tags

    def test_topk_sends_more_values_than_deft(self, smoke_lm_task):
        trainer_topk, _ = run_short(smoke_lm_task, "topk", 0.05, n_workers=4)
        trainer_deft, _ = run_short(smoke_lm_task, "deft", 0.05, n_workers=4)
        topk_values = trainer_topk.backend.meter.total_sent(tag="values")
        deft_values = trainer_deft.backend.meter.total_sent(tag="values")
        assert topk_values > deft_values
