"""Finite-difference verification of the autograd engine's core ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of one array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        grad[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, params, tolerance=1e-6):
    """``build_loss(tensors)`` -> scalar Tensor; verify every param's grad."""
    tensors = [Tensor(p.copy(), requires_grad=True, dtype=np.float64) for p in params]
    loss = build_loss(tensors)
    loss.backward()
    for i, tensor in enumerate(tensors):
        def f(i=i):
            frozen = [Tensor(t.data, dtype=np.float64) for t in tensors]
            return build_loss(frozen).item()

        expected = numerical_gradient(f, tensor.data)
        assert tensor.grad is not None, f"parameter {i} has no gradient"
        np.testing.assert_allclose(tensor.grad, expected, atol=tolerance, rtol=1e-4)


RNG = np.random.default_rng(7)


class TestElementwiseOps:
    def test_add(self):
        a, b = RNG.standard_normal((3, 4)), RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0] + t[1]).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = RNG.standard_normal((3, 4)), RNG.standard_normal(4)
        check_gradient(lambda t: ((t[0] + t[1]) ** 2).sum(), [a, b])

    def test_scalar_add(self):
        a = RNG.standard_normal((2, 3))
        check_gradient(lambda t: (t[0] + 3.0).sum(), [a])

    def test_sub(self):
        a, b = RNG.standard_normal(5), RNG.standard_normal(5)
        check_gradient(lambda t: ((t[0] - t[1]) ** 2).sum(), [a, b])

    def test_rsub(self):
        a = RNG.standard_normal(4)
        check_gradient(lambda t: ((1.0 - t[0]) ** 2).sum(), [a])

    def test_mul(self):
        a, b = RNG.standard_normal((2, 3)), RNG.standard_normal((2, 3))
        check_gradient(lambda t: (t[0] * t[1]).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = RNG.standard_normal((2, 3)), RNG.standard_normal((1, 3))
        check_gradient(lambda t: (t[0] * t[1]).sum(), [a, b])

    def test_div(self):
        a = RNG.standard_normal(6)
        b = RNG.standard_normal(6) + 3.0
        check_gradient(lambda t: (t[0] / t[1]).sum(), [a, b])

    def test_neg(self):
        a = RNG.standard_normal(4)
        check_gradient(lambda t: (-t[0] * t[0]).sum(), [a])

    def test_pow(self):
        a = np.abs(RNG.standard_normal(5)) + 0.5
        check_gradient(lambda t: (t[0] ** 3).sum(), [a])

    def test_sqrt(self):
        a = np.abs(RNG.standard_normal(5)) + 0.5
        check_gradient(lambda t: t[0].sqrt().sum(), [a])

    def test_exp(self):
        a = RNG.standard_normal(5)
        check_gradient(lambda t: t[0].exp().sum(), [a])

    def test_log(self):
        a = np.abs(RNG.standard_normal(5)) + 0.5
        check_gradient(lambda t: t[0].log().sum(), [a])

    def test_tanh(self):
        a = RNG.standard_normal(5)
        check_gradient(lambda t: (t[0].tanh() ** 2).sum(), [a])

    def test_sigmoid(self):
        a = RNG.standard_normal(5)
        check_gradient(lambda t: (t[0].sigmoid() ** 2).sum(), [a])

    def test_relu(self):
        a = RNG.standard_normal(20) + 0.05  # avoid points exactly at the kink
        check_gradient(lambda t: (t[0].relu() * t[0].relu()).sum(), [a])

    def test_clip(self):
        a = RNG.standard_normal(20) * 2
        a = a[np.abs(np.abs(a) - 1.0) > 1e-2]  # keep away from clip boundaries
        check_gradient(lambda t: (t[0].clip(-1.0, 1.0) ** 2).sum(), [a])


class TestMatmul:
    def test_matrix_matrix(self):
        a, b = RNG.standard_normal((3, 4)), RNG.standard_normal((4, 2))
        check_gradient(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_matrix_vector(self):
        a, b = RNG.standard_normal((3, 4)), RNG.standard_normal(4)
        check_gradient(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_vector_matrix(self):
        a, b = RNG.standard_normal(3), RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_vector_vector(self):
        a, b = RNG.standard_normal(5), RNG.standard_normal(5)
        check_gradient(lambda t: t[0] @ t[1], [a, b])

    def test_batched(self):
        a, b = RNG.standard_normal((2, 3, 4)), RNG.standard_normal((2, 4, 5))
        check_gradient(lambda t: ((t[0] @ t[1]) ** 2).sum(), [a, b])


class TestReductionsAndShape:
    def test_sum_all(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0] * t[0]).sum(), [a])

    def test_sum_axis(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0].sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0] - t[0].sum(axis=1, keepdims=True)).sum(), [a])

    def test_mean(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0].mean(axis=1) ** 2).sum(), [a])

    def test_mean_tuple_axis(self):
        a = RNG.standard_normal((2, 3, 4))
        check_gradient(lambda t: (t[0].mean(axis=(0, 2)) ** 2).sum(), [a])

    def test_max(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: t[0].max(axis=1).sum(), [a])

    def test_reshape(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0].reshape(12) ** 2).sum(), [a])

    def test_transpose(self):
        a = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (t[0].T @ t[0]).sum(), [a])

    def test_getitem_slice(self):
        a = RNG.standard_normal((5, 4))
        check_gradient(lambda t: (t[0][1:3, :] ** 2).sum(), [a])

    def test_getitem_integer_array(self):
        a = RNG.standard_normal((6, 3))
        idx = np.array([0, 2, 2, 5])
        check_gradient(lambda t: (t[0][idx] ** 2).sum(), [a])

    def test_concatenate(self):
        a, b = RNG.standard_normal((2, 3)), RNG.standard_normal((2, 3))
        check_gradient(lambda t: (Tensor.concatenate([t[0], t[1]], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = RNG.standard_normal(4), RNG.standard_normal(4)
        check_gradient(lambda t: (Tensor.stack([t[0], t[1]], axis=0) ** 2).sum(), [a, b])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True, dtype=np.float64)
        loss = (a * a).sum() + (a * 3.0).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 3.0)

    def test_backward_requires_grad(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_no_grad_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (a * 2).sum()
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach_breaks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        out = (a.detach() * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_backward_with_explicit_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
        out = a * 3.0
        out.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_diamond_graph(self):
        # The same node feeds two paths that later merge: gradients must sum.
        a = Tensor(np.array([1.5]), requires_grad=True, dtype=np.float64)
        b = a * 2.0
        c = a * 3.0
        loss = (b * c).sum()  # loss = 6 a^2 -> dloss/da = 12 a
        loss.backward()
        np.testing.assert_allclose(a.grad, 12 * a.data)

    def test_repeated_backward_accumulates_into_leaf(self):
        a = Tensor(np.array([2.0]), requires_grad=True, dtype=np.float64)
        (a * a).sum().backward()
        first = a.grad.copy()
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)


class TestTensorConstruction:
    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).data.shape == (2, 3)
        assert float(Tensor.ones(2).data.sum()) == 2.0

    def test_randn_with_rng_is_reproducible(self):
        a = Tensor.randn(4, rng=np.random.default_rng(0))
        b = Tensor.randn(4, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a.data, b.data)

    def test_from_numpy_preserves_dtype(self):
        arr = np.arange(4, dtype=np.float64)
        assert Tensor.from_numpy(arr).dtype == np.float64

    def test_properties(self):
        t = Tensor(np.zeros((2, 5)))
        assert t.shape == (2, 5)
        assert t.ndim == 2
        assert t.size == 10
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
