"""Behavioural tests of the multiprocess backend against the simulated oracle.

The contract under test: every operation records the byte-identical
traffic-meter entry the simulated backend would, lock-step reductions are
bit-identical, worker crashes surface as clean errors, and no shared-memory
segment survives ``close()`` -- crash or not.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.backends import MultiprocessBackend, available_backends, build_backend_component
from repro.backends.shm import list_repro_segments
from repro.comm.backend import ReduceOp
from repro.comm.simulated import SimulatedBackend

N = 4
M = 64


@pytest.fixture
def pair():
    """A (simulated, multiprocess) backend pair over the same worker count."""
    sim = SimulatedBackend(N)
    mp = MultiprocessBackend(N)
    yield sim, mp
    mp.close()


def _rows(seed=0, m=M):
    return np.random.default_rng(seed).standard_normal((N, m))


def _assert_meters_identical(sim, mp):
    assert len(sim.meter.records) == len(mp.meter.records)
    for a, b in zip(sim.meter.records, mp.meter.records):
        assert (a.op, a.sent_per_rank, a.received_per_rank, a.tag, a.src, a.dst) == (
            b.op, b.sent_per_rank, b.received_per_rank, b.tag, b.src, b.dst
        )


class TestRegistry:
    def test_backends_registered(self):
        assert available_backends() == ["multiprocess", "simulated"]

    def test_build_simulated(self):
        backend = build_backend_component("simulated", N)
        assert isinstance(backend, SimulatedBackend)
        assert backend.name == "simulated"
        assert backend.procs is None
        backend.close()  # no-op, but part of the shared surface

    def test_build_multiprocess_with_procs(self):
        backend = build_backend_component("multiprocess", N, procs=2)
        try:
            assert isinstance(backend, MultiprocessBackend)
            assert backend.procs == 2
        finally:
            backend.close()

    def test_procs_clamped_to_workers(self):
        backend = MultiprocessBackend(2, procs=16)
        try:
            assert backend.procs == 2
        finally:
            backend.close()


class TestReductionParity:
    @pytest.mark.parametrize("op", [ReduceOp.SUM, ReduceOp.MEAN, ReduceOp.MAX, ReduceOp.MIN])
    def test_allreduce_rows_bit_identical(self, pair, op):
        sim, mp = pair
        rows = _rows(seed=_ROP_SEED[op])
        expected = sim.allreduce_rows(rows.copy(), op=op, tag="t")
        actual = mp.allreduce_rows(rows.copy(), op=op, tag="t")
        np.testing.assert_array_equal(expected, actual)
        assert mp.shm_ops == 1
        assert mp.fallback_ops == 0
        _assert_meters_identical(sim, mp)

    def test_allreduce_list_bit_identical(self, pair):
        sim, mp = pair
        buffers = [np.random.default_rng(r).standard_normal(M) for r in range(N)]
        expected = sim.allreduce([b.copy() for b in buffers], tag="lst")
        actual = mp.allreduce([b.copy() for b in buffers], tag="lst")
        for e, a in zip(expected, actual):
            np.testing.assert_array_equal(e, a)
        assert mp.shm_ops == 1
        _assert_meters_identical(sim, mp)

    def test_allreduce_int_dtype_falls_back_identically(self, pair):
        sim, mp = pair
        buffers = [np.arange(8, dtype=np.int64) * (r + 1) for r in range(N)]
        expected = sim.allreduce([b.copy() for b in buffers])
        actual = mp.allreduce([b.copy() for b in buffers])
        for e, a in zip(expected, actual):
            np.testing.assert_array_equal(e, a)
            assert a.dtype == np.int64
        assert mp.shm_ops == 0
        assert mp.fallback_ops == 1
        _assert_meters_identical(sim, mp)

    def test_allgather_rows_view_matches(self, pair):
        sim, mp = pair
        rows = _rows(seed=42)
        expected = sim.allgather_rows(rows.copy(), tag="rows")
        actual = mp.allgather_rows(rows.copy(), tag="rows")
        np.testing.assert_array_equal(expected, actual)
        _assert_meters_identical(sim, mp)

    def test_allgather_rows_view_survives_one_more_op(self, pair):
        # The double buffer guarantees a gathered view stays valid across
        # exactly one subsequent data-staging operation.
        _, mp = pair
        rows = _rows(seed=7)
        view = mp.allgather_rows(rows.copy())
        mp.allreduce_rows(_rows(seed=8))
        np.testing.assert_array_equal(view, rows)

    def test_parent_side_ops_identical(self, pair):
        sim, mp = pair
        idx = [np.arange(r + 1, dtype=np.int64) for r in range(N)]
        for e, a in zip(sim.allgather(idx, tag="i"), mp.allgather(idx, tag="i")):
            np.testing.assert_array_equal(e, a)
        assert sim.broadcast({"k": 1}, root=0) == mp.broadcast({"k": 1}, root=0)
        values = [0.5, 1.5, 2.5, 3.5]
        assert sim.reduce_scalar(values) == mp.reduce_scalar(values)
        for e, a in zip(
            sim.gather([np.ones(3)] * N, root=1), mp.gather([np.ones(3)] * N, root=1)
        ):
            np.testing.assert_array_equal(e, a)
        _assert_meters_identical(sim, mp)

    def test_barrier_roundtrip(self, pair):
        _, mp = pair
        mp.barrier()  # no-op before the pool starts
        mp.allreduce_rows(_rows())
        mp.barrier()  # a real all-ack round


_ROP_SEED = {ReduceOp.SUM: 1, ReduceOp.MEAN: 2, ReduceOp.MAX: 3, ReduceOp.MIN: 4}


class TestMailbox:
    def test_push_pull_send_metering_identical(self, pair):
        sim, mp = pair
        for backend in (sim, mp):
            backend.push(1, 100, tag="async-push")
            backend.send(0, 2, 50, tag="gossip")
            backend.pull(1, 100, tag="async-pull")
        _assert_meters_identical(sim, mp)

    def test_mailbox_records_flow(self):
        mp = MultiprocessBackend(N)
        try:
            mp.push(1, 100, tag="p")
            mp.push(2, 200, tag="p")
            mp.send(0, 3, 50, tag="s")
            stats = mp.mailbox_stats()
            assert stats["enqueued"] == 3
            assert stats["pending"] == 3
            mp.pull(1, 100)  # drains the server ring (the two pushes)
            records = mp.drain_mailbox(3)  # rank 3's ring (the send)
            assert len(records) == 1
            assert records[0][1] == 0  # src peer
            assert records[0][2] == 50  # payload
            stats = mp.mailbox_stats()
            assert stats["drained"] == 3
            assert stats["pending"] == 0
        finally:
            mp.close()

    def test_stats_survive_close(self):
        mp = MultiprocessBackend(N)
        mp.push(0, 10)
        mp.close()
        stats = mp.mailbox_stats()
        assert stats["enqueued"] == 1
        assert stats["pending"] == 1


class TestLifecycle:
    def test_close_unlinks_segments(self):
        mp = MultiprocessBackend(N)
        mp.allreduce_rows(_rows())
        created = [arena.name for arena in mp._arenas]
        assert created and all(name in list_repro_segments() for name in created)
        mp.close()
        assert all(name not in list_repro_segments() for name in created)

    def test_close_is_idempotent(self):
        mp = MultiprocessBackend(N)
        mp.allreduce_rows(_rows())
        mp.close()
        mp.close()

    def test_close_before_start_is_safe(self):
        mp = MultiprocessBackend(N)
        mp.close()

    def test_clean_close_counts_zero_cleanup_errors(self):
        mp = MultiprocessBackend(N)
        mp.allreduce_rows(_rows())
        mp.close()
        assert mp.cleanup_errors == 0
        assert mp.mailbox_stats()["cleanup_errors"] == 0

    def test_arena_close_failures_are_counted(self):
        mp = MultiprocessBackend(N)
        mp.allreduce_rows(_rows())
        arenas = list(mp._arenas)

        def boom():
            raise OSError("synthetic unlink failure")

        for arena in arenas:
            arena._shm.unlink = boom
        mp.close()
        assert mp.cleanup_errors == len(arenas)
        assert all(arena.close_errors == 1 for arena in arenas)
        assert mp.mailbox_stats()["cleanup_errors"] == mp.cleanup_errors
        # Unlink for real so the segments do not outlive the test.
        for arena in arenas:
            del arena._shm.unlink
            arena._shm.unlink()
        assert all(arena.name not in list_repro_segments() for arena in arenas)

    def test_ops_after_close_fall_back(self):
        mp = MultiprocessBackend(N)
        mp.close()
        sim = SimulatedBackend(N)
        rows = _rows()
        np.testing.assert_array_equal(
            mp.allreduce_rows(rows.copy()), sim.allreduce_rows(rows.copy())
        )
        assert mp.fallback_ops == 1

    def test_sigkilled_worker_surfaces_clean_error(self):
        mp = MultiprocessBackend(N)
        try:
            mp.allreduce_rows(_rows())
            victim = mp._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5)
            deadline = time.monotonic() + 5
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(RuntimeError, match="died with exitcode"):
                mp.allreduce_rows(_rows(seed=9))
        finally:
            created = [arena.name for arena in mp._arenas]
            mp.close()
        # The crash must not leak a single segment.
        assert all(name not in list_repro_segments() for name in created)

    def test_degraded_mode_without_fork(self, monkeypatch):
        mp = MultiprocessBackend(N)
        try:
            monkeypatch.setattr(mp, "_fork_ok", False)
            sim = SimulatedBackend(N)
            rows = _rows()
            np.testing.assert_array_equal(
                mp.allreduce_rows(rows.copy()), sim.allreduce_rows(rows.copy())
            )
            assert not mp._started
            assert mp.fallback_ops == 1
            assert mp.shm_ops == 0
        finally:
            mp.close()


class TestComputeOffload:
    def test_unbound_compute_raises(self):
        mp = MultiprocessBackend(N)
        try:
            with pytest.raises(RuntimeError, match="not bound"):
                mp.compute_gradients([(0, None, None)])
        finally:
            mp.close()

    def test_bind_after_start_raises(self):
        mp = MultiprocessBackend(N)
        try:
            mp.allreduce_rows(_rows())
            with pytest.raises(RuntimeError, match="precede"):
                mp.bind_compute(object(), object(), 10)
        finally:
            mp.close()

    def test_offloaded_gradients_bit_identical(self, smoke_lm_task):
        from repro.data.dataloader import DataLoader
        from repro.execution.base import flatten_parameters
        from repro.training.optimizers import flatten_gradients

        task = smoke_lm_task
        model = task.build_model()
        n_gradients = flatten_parameters(model).size
        loader = DataLoader(
            task.train_dataset(), batch_size=8, shuffle=True,
            rng=np.random.default_rng(0),
        )
        iterator = iter(loader)
        batches = [next(iterator) for _ in range(N)]

        # Parent-side reference gradients, one per rank.
        reference = []
        for batch in batches:
            model.zero_grad()
            loss = task.compute_loss(model, batch)
            loss.backward()
            reference.append((float(loss.item()), flatten_gradients(model)))
            model.zero_grad()

        mp = MultiprocessBackend(N)
        try:
            mp.bind_compute(model, task, n_gradients)
            assert mp.supports_compute
            jobs = [(rank, None, batches[rank]) for rank in range(N)]
            results = mp.compute_gradients(jobs)
            assert len(results) == N
            for (exp_loss, exp_grad), (loss, grad, start, end) in zip(reference, results):
                assert loss == exp_loss
                np.testing.assert_array_equal(exp_grad, grad)
                assert end >= start
        finally:
            mp.close()
