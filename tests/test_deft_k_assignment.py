"""Tests for Algorithm 3: gradient-norm based local k assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsifiers.base import GradientLayout
from repro.sparsifiers.deft.k_assignment import assign_local_k, layer_norms
from repro.sparsifiers.deft.partitioning import two_stage_partition


def make_partitions(sizes, n_workers=1):
    layout = GradientLayout.from_named_shapes([(f"l{i}", (s,)) for i, s in enumerate(sizes)])
    return two_stage_partition(layout, n_workers)


class TestLayerNorms:
    def test_norms_match_numpy(self):
        partitions = make_partitions([4, 6])
        flat = np.arange(10, dtype=np.float64)
        norms = layer_norms(flat, partitions)
        np.testing.assert_allclose(norms[0], np.linalg.norm(flat[:4]))
        np.testing.assert_allclose(norms[1], np.linalg.norm(flat[4:]))


class TestAssignLocalK:
    def test_total_close_to_budget(self):
        partitions = make_partitions([100, 200, 300])
        norms = [1.0, 2.0, 3.0]
        ks = assign_local_k(partitions, norms, 60)
        assert abs(int(ks.sum()) - 60) <= len(partitions)

    def test_proportional_to_norms_for_equal_sizes(self):
        partitions = make_partitions([100, 100, 100])
        ks = assign_local_k(partitions, [1.0, 2.0, 7.0], 100)
        assert ks[2] > ks[1] > ks[0]

    def test_larger_norm_never_gets_less_with_equal_sizes(self):
        partitions = make_partitions([50, 50])
        ks = assign_local_k(partitions, [10.0, 1.0], 20)
        assert ks[0] >= ks[1]

    def test_k_capped_by_layer_size(self):
        partitions = make_partitions([5, 1000])
        ks = assign_local_k(partitions, [100.0, 1.0], 500)
        assert ks[0] <= 5

    def test_every_layer_gets_at_least_one_when_budget_positive(self):
        """Algorithm 3 line 13 floors each layer's k at 1, so even layers with
        tiny norms contribute (and the total can slightly exceed k)."""
        partitions = make_partitions([10, 10, 10])
        ks = assign_local_k(partitions, [5.0, 0.001, 0.001], 9)
        assert (ks >= 1).all()

    def test_zero_budget_assigns_zero(self):
        partitions = make_partitions([10, 10])
        ks = assign_local_k(partitions, [1.0, 1.0], 0)
        assert int(ks.sum()) == 0

    def test_zero_norms_handled(self):
        partitions = make_partitions([10, 10])
        ks = assign_local_k(partitions, [0.0, 0.0], 5)
        # With no norm signal the algorithm still terminates with a valid
        # (possibly conservative) assignment bounded by layer sizes.
        assert (ks >= 0).all()
        assert (ks <= 10).all()

    def test_budget_equal_to_total_size_selects_everything(self):
        partitions = make_partitions([10, 20])
        ks = assign_local_k(partitions, [1.0, 2.0], 30)
        assert int(ks.sum()) == 30
        assert list(ks) == [10, 20]

    def test_negative_inputs_rejected(self):
        partitions = make_partitions([10])
        with pytest.raises(ValueError):
            assign_local_k(partitions, [-1.0], 5)
        with pytest.raises(ValueError):
            assign_local_k(partitions, [1.0], -5)
        with pytest.raises(ValueError):
            assign_local_k(partitions, [1.0, 2.0], 5)

    def test_deterministic(self):
        partitions = make_partitions([30, 60, 90])
        norms = [3.0, 2.0, 1.0]
        np.testing.assert_array_equal(
            assign_local_k(partitions, norms, 40), assign_local_k(partitions, norms, 40)
        )

    def test_empty_partition_list(self):
        assert assign_local_k([], [], 10).size == 0

    def test_priority_order_is_by_norm(self):
        """The highest-norm layer is assigned first and therefore gets the
        full proportional share before rounding losses accumulate."""
        partitions = make_partitions([1000, 1000])
        ks = assign_local_k(partitions, [9.0, 1.0], 100)
        assert ks[0] == pytest.approx(90, abs=2)
        assert ks[1] == pytest.approx(10, abs=2)


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def partition_problem(draw):
    sizes = draw(st.lists(st.integers(1, 300), min_size=1, max_size=15))
    norms = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=len(sizes),
            max_size=len(sizes),
        )
    )
    total = sum(sizes)
    k_total = draw(st.integers(0, total))
    return sizes, norms, k_total


@given(problem=partition_problem())
@settings(max_examples=80, deadline=None)
def test_assignment_respects_sizes_and_budget(problem):
    """Invariants of Algorithm 3: 0 <= k_x <= size_x and the total is close
    to the requested budget (within one unit per layer from the max(1,.)
    floor and integer truncation)."""
    sizes, norms, k_total = problem
    partitions = make_partitions(sizes)
    ks = assign_local_k(partitions, norms, k_total)
    assert len(ks) == len(sizes)
    for k, size in zip(ks, sizes):
        assert 0 <= k <= size
    assert int(ks.sum()) <= k_total + len(sizes)
    if k_total > 0:
        # The per-layer floor of 1 (Algorithm 3) applies to every layer.
        assert (ks >= 1).all()


@given(
    sizes=st.lists(st.integers(50, 200), min_size=2, max_size=8),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_monotone_in_norm_for_equal_sizes(sizes, seed):
    """With equal sizes, a layer with a strictly larger norm never receives a
    smaller k than a layer with a smaller norm."""
    size = sizes[0]
    partitions = make_partitions([size] * len(sizes))
    rng = np.random.default_rng(seed)
    norms = rng.uniform(0.1, 10.0, len(sizes))
    ks = assign_local_k(partitions, norms, size * len(sizes) // 4)
    order = np.argsort(-norms)
    sorted_ks = ks[order]
    # Allow equality but not inversions of more than one unit (integer floor).
    for i in range(len(sorted_ks) - 1):
        assert sorted_ks[i] + 1 >= sorted_ks[i + 1]


class TestRobustLayerNorms:
    """Median-of-norms statistic for attack-resistant k assignment."""

    def _accs(self, partitions, n_workers=5, seed=0):
        total = sum(p.size for p in partitions)
        rng = np.random.default_rng(seed)
        return [rng.standard_normal(total) for _ in range(n_workers)]

    def test_median_matches_numpy(self):
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        partitions = make_partitions([30, 50])
        accs = self._accs(partitions)
        matrix = np.stack([layer_norms(a, partitions) for a in accs])
        np.testing.assert_allclose(
            robust_layer_norms(accs, partitions), np.median(matrix, axis=0)
        )
        np.testing.assert_allclose(
            robust_layer_norms(accs, partitions, statistic="mean"), matrix.mean(axis=0)
        )

    def test_single_inflator_cannot_move_median(self):
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        partitions = make_partitions([40, 40, 40])
        accs = self._accs(partitions)
        benign_norms = robust_layer_norms(accs, partitions)
        # The last worker inflates layer 0 by six orders of magnitude.
        accs[-1] = accs[-1].copy()
        accs[-1][:40] *= 1e6
        attacked_norms = robust_layer_norms(accs, partitions)
        # One corrupted sample shifts the median by at most one order
        # statistic of the benign spread -- never toward the 1e6 inflation.
        np.testing.assert_allclose(attacked_norms[1:], benign_norms[1:])
        assert attacked_norms[0] < 2.0 * benign_norms[0]

    def test_mean_statistic_is_moved_for_contrast(self):
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        partitions = make_partitions([40, 40])
        accs = self._accs(partitions)
        accs[-1] = accs[-1].copy()
        accs[-1][:40] *= 1e6
        inflated = robust_layer_norms(accs, partitions, statistic="mean")
        benign = robust_layer_norms(accs[:-1], partitions, statistic="mean")
        assert inflated[0] > 100 * benign[0]

    def test_budget_grab_blocked(self):
        """The attack the statistic exists for: k assignment from an
        inflated norm vector gives the inflated layer the whole budget,
        while the median assignment keeps the benign split."""
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        partitions = make_partitions([100, 100, 100])
        accs = self._accs(partitions)
        accs[-1] = accs[-1].copy()
        accs[-1][:100] *= 1e6
        k_total = 30
        grabbed = assign_local_k(partitions, layer_norms(accs[-1], partitions), k_total)
        robust = assign_local_k(partitions, robust_layer_norms(accs, partitions), k_total)
        # Inflated view: layer 0 takes (almost) everything.
        assert grabbed[0] >= k_total - 2
        # Median view: the split stays balanced (no layer above ~half).
        assert robust[0] < k_total * 0.6

    def test_invalid_statistic_rejected(self):
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        partitions = make_partitions([10])
        with pytest.raises(ValueError):
            robust_layer_norms(self._accs(partitions), partitions, statistic="mode")

    def test_empty_input_rejected(self):
        from repro.sparsifiers.deft.k_assignment import robust_layer_norms

        with pytest.raises(ValueError):
            robust_layer_norms([], make_partitions([10]))
