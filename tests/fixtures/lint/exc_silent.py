"""Seeded exception-discipline violations: silent broad handlers."""


def swallow_everything(fn):
    try:
        return fn()
    except Exception:
        return None


def swallow_bare(fn):
    try:
        return fn()
    except:  # noqa: E722
        return None


def swallow_in_tuple(fn):
    try:
        return fn()
    except (ValueError, BaseException):
        return None


def bound_but_unused(fn):
    try:
        return fn()
    except Exception as exc:
        return None


def reraise_is_fine(fn):
    try:
        return fn()
    except Exception:
        raise


def recorded_is_fine(fn, log):
    try:
        return fn()
    except Exception as exc:
        log.append(str(exc))
        return None


def narrow_is_fine(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
