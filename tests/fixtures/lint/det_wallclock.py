"""Seeded wallclock violations: every flavour of wall-clock read."""

import time
from datetime import datetime, date
from time import time as now


def stamp() -> float:
    return time.time()


def stamp_aliased() -> float:
    return now()


def stamp_datetime() -> str:
    return datetime.now().isoformat()


def stamp_utc() -> str:
    return datetime.utcnow().isoformat()


def stamp_date() -> str:
    return date.today().isoformat()


def allowed_span() -> float:
    # Monotonic host-span timing is fine: it never enters compared payloads.
    return time.perf_counter() + time.monotonic()
