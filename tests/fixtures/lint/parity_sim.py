"""Parity fixture: the reference backend the real one must mirror."""


class SimulatedBackend:
    def allreduce(self, buffers, tag=""):
        self.meter.record("allreduce", [1], [1], tag=tag)
        return buffers

    def broadcast(self, value, root, tag=""):
        self.meter.record("broadcast", [1], [1], tag=tag)
        return value

    def push(self, rank, payload, tag=""):
        self.meter.record("push", [payload], [0], tag=tag)

    def barrier(self):
        pass
