"""Seeded hostenv violation: host CPU count shaping behaviour."""

import multiprocessing
import os


def pool_size() -> int:
    return os.cpu_count() or 1


def pool_size_mp() -> int:
    return multiprocessing.cpu_count()
