"""Malformed pragmas: each one is itself a ``pragma`` finding."""


def unknown_directive() -> int:
    return 1  # repro: allow-everything(no such directive)


def empty_reason() -> int:
    return 2  # repro: isolation()


def missing_parens() -> int:
    return 3  # repro: allow-wallclock
