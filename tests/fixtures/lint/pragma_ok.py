"""Every violation class, suppressed by a well-formed pragma.

Exercises both placements: trailing on the offending line and a
standalone comment on the line above.
"""

import os
import time

import numpy as np


def stamp() -> float:
    return time.time()  # repro: allow-wallclock(fixture: audit stamp outside compared payloads)


def stamp_above() -> float:
    # repro: allow-wallclock(fixture: standalone-comment placement)
    return time.time()


def fresh_generator():
    # repro: allow-unseeded(fixture: convenience fallback, callers inject seeded rngs)
    return np.random.default_rng()


def pool_size() -> int:
    return os.cpu_count() or 1  # repro: allow-hostenv(fixture: pool sizing only)


def swallow(fn):
    try:
        return fn()
    except Exception:  # repro: isolation(fixture: failure is reported out of band)
        return None
