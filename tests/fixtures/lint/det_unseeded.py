"""Seeded unseeded-RNG violations: OS-entropy and global-state draws."""

import random

import numpy as np
from numpy.random import default_rng


def fresh_generator():
    return np.random.default_rng()


def fresh_generator_aliased():
    return default_rng()


def global_numpy_draw():
    np.random.seed(0)
    return np.random.rand(3)


def stdlib_draw():
    return random.random() + random.randint(0, 10)


def seeded_is_fine(seed: int):
    # Generators derived from the run seed are the sanctioned pattern.
    rng = np.random.default_rng(seed)
    return rng.random()
