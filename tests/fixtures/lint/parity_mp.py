"""Parity fixture: drifted twin -- one op missing, one op mispriced."""


class MultiprocessBackend:
    def allreduce(self, buffers, tag=""):
        # Mispriced: records a different op literal than the reference.
        self.meter.record("allgather", [1], [1], tag=tag)
        return buffers

    def broadcast(self, value, root, tag=""):
        self.meter.record("broadcast", [1], [1], tag=tag)
        return value

    # ``push`` is missing entirely.

    def barrier(self):
        pass

    def extra_public_surface(self):
        # Extra methods beyond the reference interface are allowed.
        return {}
