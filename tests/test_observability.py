"""Tests for the observability layer: metrics, events, spans, trace export.

The unit classes exercise the collaborators in isolation; the integration
classes drive real (tiny) training runs and check the recorded traces
against the execution schedules -- span nesting, src/dst tagging of comm
spans, virtual-clock reconciliation -- plus the two hard guarantees:
disabled runs are bit-identical to traced runs, and the observability
payload never leaks into the sweep cache's keys or entries.
"""

import json

import pytest

from repro.api import ObservabilitySpec, RunResult, RunSpec
from repro.api import run as api_run
from repro.api.spec import ClusterSpec, ExecutionSpec, OptimizerSpec
from repro.observability import (
    EVENTS,
    NULL_METRICS,
    NULL_TRACER,
    EventBus,
    MetricsRegistry,
    Observability,
    PHASES,
    SpanTracer,
)
from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig
from tests.conftest import make_smoke_lm_task


def small_spec(execution="synchronous", trace=True, metrics=False, seed=0, **cluster):
    cluster.setdefault("n_workers", 3)
    cluster.setdefault("straggler_profile", "lognormal")
    return RunSpec(
        workload="lm",
        scale="smoke",
        seed=seed,
        cluster=ClusterSpec(**cluster),
        optimizer=OptimizerSpec(epochs=1, max_iterations_per_epoch=3),
        execution=ExecutionSpec(model=execution),
        observability=ObservabilitySpec(trace=trace, metrics=metrics),
    )


def make_trainer(n_workers=2, iterations=3, observability=None, **config_kwargs):
    task = make_smoke_lm_task()
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=1,
        lr=0.2,
        seed=0,
        max_iterations_per_epoch=iterations,
        evaluate_each_epoch=False,
        observability=observability,
        **config_kwargs,
    )
    return DistributedTrainer(task, build_sparsifier("deft", 0.05), config)


# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("iterations_total")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("virtual_time_seconds")
        gauge.set(1.5)
        gauge.add(0.5)
        assert gauge.value == 2.0

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", op="push") is registry.histogram("h", op="push")

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        push = registry.histogram("comm_hops", op="push")
        pull = registry.histogram("comm_hops", op="pull")
        assert push is not pull
        push.observe(2.0)
        assert pull.summary()["count"] == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_snapshot_shape_and_rendered_names(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc()
        registry.gauge("depth").set(4.0)
        registry.histogram("hops", op="send").observe(1.0)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["runs_total"] == 1.0
        assert snapshot["gauges"]["depth"] == 4.0
        assert snapshot["histograms"]["hops{op=send}"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc()
        registry.histogram("h").observe(1.0)
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()

    def test_histogram_memory_bounded_by_reservoir(self):
        histogram = MetricsRegistry().histogram("latency")
        n = histogram.DEFAULT_MAX_OBSERVATIONS * 3
        for value in range(n):
            histogram.observe(float(value))
        summary = histogram.summary()
        # Exact aggregates survive the bound; the sample set does not grow.
        assert summary["count"] == n
        assert summary["min"] == 0.0
        assert summary["max"] == float(n - 1)
        assert summary["mean"] == pytest.approx((n - 1) / 2.0)
        assert summary["observations_kept"] == histogram.DEFAULT_MAX_OBSERVATIONS
        assert len(histogram.values) == histogram.DEFAULT_MAX_OBSERVATIONS
        # Reservoir quantiles stay representative of the uniform stream.
        assert summary["p50"] == pytest.approx(n / 2.0, rel=0.15)

    def test_histogram_below_cap_is_exact(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["observations_kept"] == 4
        assert summary["p50"] == 2.5

    def test_histogram_reservoir_deterministic_per_name(self):
        a = MetricsRegistry().histogram("latency", op="push")
        b = MetricsRegistry().histogram("latency", op="push")
        for value in range(10_000):
            a.observe(float(value))
            b.observe(float(value))
        assert a.values == b.values
        assert a.summary() == b.summary()

    def test_histogram_custom_cap(self):
        from repro.observability.metrics import Histogram

        histogram = Histogram("h", max_observations=16)
        for value in range(100):
            histogram.observe(float(value))
        assert len(histogram.values) == 16
        assert histogram.summary()["count"] == 100

    def test_null_registry_absorbs_everything(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("anything", label="x").inc(5.0)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        snapshot = NULL_METRICS.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}


# ---------------------------------------------------------------------- #
class TestEventBus:
    def test_subscribe_emit_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe("round_complete", lambda p: seen.append(("a", p["n"])))
        bus.subscribe("round_complete", lambda p: seen.append(("b", p["n"])))
        bus.emit("round_complete", {"n": 1})
        assert seen == [("a", 1), ("b", 1)]

    def test_unsubscribe_thunk(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("push", seen.append)
        unsubscribe()
        bus.emit("push", {"n": 1})
        assert seen == []
        unsubscribe()  # idempotent

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe("no_such_event", lambda p: None)

    def test_has_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers("pull")
        off = bus.subscribe("pull", lambda p: None)
        assert bus.has_subscribers("pull")
        off()
        assert not bus.has_subscribers("pull")

    def test_emit_without_subscribers_is_noop(self):
        EventBus().emit("before_aggregation", {"x": 1})

    def test_event_vocabulary(self):
        assert set(EVENTS) == {
            "before_aggregation", "after_aggregation", "push", "pull",
            "round_complete",
        }


# ---------------------------------------------------------------------- #
class TestSpanTracer:
    def test_record_validates_phase(self):
        with pytest.raises(ValueError):
            SpanTracer().record("not_a_phase", "x", 0, None, 0.0, 1.0)

    def test_simulated_phase_totals_take_round_maximum(self):
        tracer = SpanTracer(n_workers=2)
        # Two overlapping compute spans in the same round: the slower one
        # is what the group waits for.
        tracer.record("compute", "fb", 0, 0, 0.0, 1.0)
        tracer.record("compute", "fb", 0, 1, 0.0, 3.0)
        tracer.record("compute", "fb", 1, 0, 3.5, 5.5)
        tracer.record("collective", "x", 0, None, 3.0, 3.5)
        totals = tracer.simulated_phase_totals()
        assert totals["compute"] == 3.0 + 2.0
        assert totals["collective"] == 0.5
        assert totals["push_pull"] == 0.0

    def test_chrome_trace_structure(self):
        tracer = SpanTracer(n_workers=2, run_name="demo")
        tracer.record("compute", "fb", 0, 1, 0.0, 0.25, host=(10.0, 10.5), k=3)
        tracer.record("collective", "xchg", 0, None, 0.25, 0.5)
        trace = tracer.to_chrome_trace(extra="yes")
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["n_spans"] == 2
        assert trace["otherData"]["extra"] == "yes"

        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # Both timelines are named: 2 process rows + (group + 2 workers) each.
        assert len(meta) == 2 * (1 + 1 + 2)
        # The host-stamped span appears on both timelines, the virtual-only
        # span once.
        assert len(spans) == 3
        virtual = [e for e in spans if e["pid"] == 1]
        host = [e for e in spans if e["pid"] == 2]
        assert len(virtual) == 2 and len(host) == 1
        fb = next(e for e in virtual if e["name"] == "fb")
        assert fb["tid"] == 2  # worker 1 -> tid rank+1
        assert fb["ts"] == 0.0 and fb["dur"] == pytest.approx(0.25e6)
        assert fb["args"]["k"] == 3 and fb["args"]["iteration"] == 0
        group = next(e for e in virtual if e["name"] == "xchg")
        assert group["tid"] == 0  # group row

    def test_chrome_trace_json_round_trip(self):
        tracer = SpanTracer(n_workers=1, run_name="rt")
        tracer.record("eval", "evaluate", 2, None, 1.0, 1.0, host=(0.0, 0.1))
        trace = tracer.to_chrome_trace()
        assert json.loads(json.dumps(trace)) == trace

    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.record("compute", "x", 0, 0, 0.0, 1.0) is None
        assert len(NULL_TRACER) == 0

    def test_phases_vocabulary(self):
        assert set(PHASES) == {
            "compute", "sparsify", "encode", "collective", "push_pull",
            "aggregate", "eval",
        }


# ---------------------------------------------------------------------- #
class TestObservabilityHub:
    def test_disabled_by_default(self):
        obs = Observability()
        assert not obs.enabled
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is NULL_METRICS
        assert obs.snapshot() is None

    def test_spec_flags_select_collaborators(self):
        obs = Observability(ObservabilitySpec(trace=True), n_workers=4)
        assert obs.trace_enabled and not obs.metrics_enabled
        assert obs.tracer is not NULL_TRACER
        assert obs.tracer.n_workers == 4
        assert obs.metrics is NULL_METRICS

    def test_bus_is_always_live(self):
        seen = []
        obs = Observability()  # fully disabled
        obs.events.subscribe("round_complete", seen.append)
        obs.events.emit("round_complete", {"n": 0})
        assert seen == [{"n": 0}]

    def test_observability_spec_enabled_property(self):
        assert not ObservabilitySpec().enabled
        assert ObservabilitySpec(trace=True).enabled
        assert ObservabilitySpec(metrics=True).enabled


# ---------------------------------------------------------------------- #
class TestTraceIntegration:
    def test_lockstep_trace_reconciles_with_virtual_clock(self):
        for execution in ("synchronous", "local_sgd", "gossip"):
            result = api_run(small_spec(execution=execution))
            totals = result.observability["trace"]["otherData"]["simulated_phase_totals"]
            on_clock = totals["compute"] + totals["collective"] + totals["push_pull"]
            assert on_clock == pytest.approx(result.estimated_wallclock, abs=1e-12), execution

    def test_span_nesting_matches_synchronous_schedule(self):
        result = api_run(small_spec())
        spans = result.observability["trace"]["traceEvents"]
        virtual = [e for e in spans if e.get("ph") == "X" and e["pid"] == 1]
        n_workers, iterations = 3, result.iterations_run
        compute = [e for e in virtual if e["cat"] == "compute"]
        collective = [e for e in virtual if e["cat"] == "collective"]
        sparsify = [e for e in virtual if e["cat"] == "sparsify"]
        evals = [e for e in virtual if e["cat"] == "eval"]
        assert len(compute) == n_workers * iterations
        assert len(collective) == iterations
        assert len(sparsify) == n_workers * iterations
        assert len(evals) == 1  # one epoch
        # Within one iteration the collective starts when the slowest
        # worker's compute ends, and every selection sits at that sync point.
        it0_compute = [e for e in compute if e["args"]["iteration"] == 0]
        it0_collective = next(e for e in collective if e["args"]["iteration"] == 0)
        slowest_end = max(e["ts"] + e["dur"] for e in it0_compute)
        assert it0_collective["ts"] == pytest.approx(slowest_end)
        for e in sparsify:
            if e["args"]["iteration"] == 0:
                assert e["ts"] == pytest.approx(slowest_end)

    def test_gossip_spans_are_src_dst_tagged(self):
        result = api_run(small_spec(execution="gossip", n_workers=4))
        spans = result.observability["trace"]["traceEvents"]
        messages = [
            e for e in spans
            if e.get("ph") == "X" and e["pid"] == 1 and e["name"] == "gossip_message"
        ]
        assert messages
        for e in messages:
            assert e["args"]["dst"] == e["tid"] - 1  # receiver's worker row
            assert 0 <= e["args"]["src"] < 4
            assert e["args"]["src"] != e["args"]["dst"]
        # On a 4-ring each worker hears from both neighbours every round.
        it0 = [e for e in messages if e["args"]["iteration"] == 0]
        assert len(it0) == 4 * 2

    def test_async_bsp_push_pull_spans_are_src_dst_tagged(self):
        result = api_run(small_spec(execution="async_bsp"))
        spans = result.observability["trace"]["traceEvents"]
        pushes = [
            e for e in spans
            if e.get("ph") == "X" and e["pid"] == 1 and e["name"] == "push"
        ]
        pulls = [
            e for e in spans
            if e.get("ph") == "X" and e["pid"] == 1 and e["name"] == "pull"
        ]
        assert pushes and pulls
        for e in pushes:
            assert e["args"]["src"] == e["tid"] - 1
            assert e["args"]["dst"] == "server"
        for e in pulls:
            assert e["args"]["src"] == "server"
            assert e["args"]["dst"] == e["tid"] - 1

    def test_host_timeline_present(self):
        result = api_run(small_spec())
        spans = result.observability["trace"]["traceEvents"]
        host_compute = [
            e for e in spans
            if e.get("ph") == "X" and e["pid"] == 2 and e["cat"] == "compute"
        ]
        assert host_compute
        assert all(e["dur"] > 0 for e in host_compute)

    def test_trace_payload_round_trips_through_run_result(self):
        result = api_run(small_spec(metrics=True))
        data = result.to_dict()
        assert "observability" in data
        rehydrated = RunResult.from_dict(json.loads(json.dumps(data)))
        assert rehydrated.observability == json.loads(json.dumps(result.observability))

    def test_disabled_run_has_no_observability_payload(self):
        result = api_run(small_spec(trace=False, metrics=False))
        assert result.observability is None
        assert "observability" not in result.to_dict()

    def test_disabled_and_traced_runs_are_bit_identical(self):
        plain = api_run(small_spec(trace=False, metrics=False, seed=7))
        traced = api_run(small_spec(trace=True, metrics=True, seed=7))
        assert plain.final_metrics == traced.final_metrics
        assert plain.series("loss").values == traced.series("loss").values
        assert plain.estimated_wallclock == traced.estimated_wallclock


# ---------------------------------------------------------------------- #
class TestMetricsIntegration:
    def test_trainer_metrics_snapshot(self):
        result = api_run(small_spec(trace=False, metrics=True))
        snapshot = result.observability["metrics"]
        assert snapshot["counters"]["iterations_total"] == result.iterations_run
        assert snapshot["gauges"]["virtual_time_seconds"] == pytest.approx(
            result.estimated_wallclock
        )
        assert snapshot["histograms"]["communication_seconds"]["count"] == result.iterations_run
        assert snapshot["histograms"]["worker_idle_seconds"]["count"] == 3 * result.iterations_run

    def test_async_bsp_staleness_metrics(self):
        result = api_run(small_spec(execution="async_bsp", trace=False, metrics=True))
        snapshot = result.observability["metrics"]
        assert snapshot["counters"]["rounds_total"] == result.iterations_run
        assert snapshot["histograms"]["staleness_observed"]["count"] > 0
        assert snapshot["histograms"]["arrivals_per_round"]["count"] == result.iterations_run

    def test_topology_hops_histogram(self):
        result = api_run(
            small_spec(execution="gossip", trace=False, metrics=True,
                       n_workers=4, topology="ring")
        )
        hops = result.observability["metrics"]["histograms"]["comm_hops{op=send}"]
        assert hops["count"] > 0
        assert hops["max"] == 1.0  # ring neighbours are one hop apart


# ---------------------------------------------------------------------- #
class TestEventIntegration:
    def test_aggregation_and_round_hooks_fire_in_lockstep_run(self):
        trainer = make_trainer(n_workers=2, iterations=3)
        counts = {"before": 0, "after": 0, "rounds": []}
        trainer.obs.events.subscribe(
            "before_aggregation",
            lambda p: counts.__setitem__("before", counts["before"] + 1),
        )
        trainer.obs.events.subscribe(
            "after_aggregation",
            lambda p: counts.__setitem__("after", counts["after"] + 1),
        )
        trainer.obs.events.subscribe(
            "round_complete", lambda p: counts["rounds"].append(p["iteration"])
        )
        result = trainer.train()
        assert counts["before"] == result.iterations_run
        assert counts["after"] == result.iterations_run
        assert counts["rounds"] == list(range(result.iterations_run))

    def test_before_aggregation_payload_carries_contributions(self):
        trainer = make_trainer(n_workers=2, iterations=1)
        payloads = []
        trainer.obs.events.subscribe("before_aggregation", payloads.append)
        trainer.train()
        (payload,) = payloads
        assert payload["contributions"].shape[0] == 2
        assert payload["contributions"].shape[1] == payload["indices"].shape[0]

    def test_push_pull_hooks_fire_under_async_bsp(self):
        trainer = make_trainer(n_workers=2, iterations=2, execution="async_bsp")
        pushes, pulls = [], []
        trainer.obs.events.subscribe("push", pushes.append)
        trainer.obs.events.subscribe("pull", pulls.append)
        trainer.train()
        assert pushes and len(pushes) == len(pulls)
        assert all(0 <= p["worker"] < 2 for p in pushes)

    def test_hooks_fire_even_with_observability_disabled(self):
        # The bus is live on every run -- no flags needed to subscribe.
        trainer = make_trainer(n_workers=2, iterations=2)
        assert trainer.obs.enabled is False
        seen = []
        trainer.obs.events.subscribe("round_complete", seen.append)
        trainer.train()
        assert len(seen) == 2


# ---------------------------------------------------------------------- #
class TestCacheInteraction:
    def test_spec_key_ignores_observability(self):
        from repro.sweep.cache import spec_key

        base = small_spec(trace=False, metrics=False)
        traced = small_spec(trace=True, metrics=True)
        assert spec_key(base) == spec_key(traced)

    def test_cache_entry_strips_observability_payload(self, tmp_path):
        from repro.sweep.cache import ResultCache

        result = api_run(small_spec(metrics=True))
        assert result.observability is not None
        cache = ResultCache(root=tmp_path)
        path = cache.put(result.spec, result)
        stored = json.loads(path.read_text())
        assert "observability" not in stored["result"]
        hit = cache.get(result.spec)
        assert hit is not None
        assert hit.observability is None
        assert hit.final_metrics == result.final_metrics

    def test_traced_spec_hits_untraced_entry(self, tmp_path):
        from repro.sweep.cache import ResultCache

        cache = ResultCache(root=tmp_path)
        plain = api_run(small_spec(trace=False, metrics=False))
        cache.put(plain.spec, plain)
        hit = cache.get(small_spec(trace=True, metrics=True).resolve())
        assert hit is not None
        assert hit.final_metrics == plain.final_metrics
