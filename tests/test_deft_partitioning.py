"""Tests for Algorithm 2: two-stage gradient vector partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsifiers.base import GradientLayout
from repro.sparsifiers.deft.partitioning import LayerPartition, two_stage_partition


def layout_from_sizes(sizes):
    return GradientLayout.from_named_shapes([(f"layer{i}", (s,)) for i, s in enumerate(sizes)])


class TestLayerPartition:
    def test_size_and_slice(self):
        part = LayerPartition(start=5, end=12, source_layer=0, source_name="a")
        assert part.size == 7
        assert part.slice() == slice(5, 12)

    def test_norm(self):
        part = LayerPartition(start=1, end=3, source_layer=0, source_name="a")
        flat = np.array([9.0, 3.0, 4.0, 9.0])
        assert part.norm(flat) == pytest.approx(5.0)


class TestTwoStagePartition:
    def test_small_layers_kept_whole(self):
        layout = layout_from_sizes([10, 20, 30])
        partitions = two_stage_partition(layout, 2)
        # threshold = 60/2 = 30; no layer exceeds it, so stage one only.
        assert len(partitions) == 3
        assert [p.size for p in partitions] == [10, 20, 30]

    def test_large_layer_is_split_into_n_fragments(self):
        layout = layout_from_sizes([100, 10])
        partitions = two_stage_partition(layout, 4)
        # threshold = 110/4 = 27.5; the 100-layer splits into 4 fragments.
        fragments = [p for p in partitions if p.source_layer == 0]
        assert len(fragments) == 4
        assert sum(p.size for p in fragments) == 100
        assert max(p.size for p in fragments) - min(p.size for p in fragments) <= 1

    def test_remainder_distributed_to_first_fragments(self):
        layout = layout_from_sizes([103, 1])
        partitions = two_stage_partition(layout, 4)
        fragments = [p.size for p in partitions if p.source_layer == 0]
        assert fragments == [26, 26, 26, 25]

    def test_partitions_are_contiguous_and_cover_vector(self):
        layout = layout_from_sizes([50, 7, 200, 3])
        partitions = two_stage_partition(layout, 4)
        position = 0
        for part in partitions:
            assert part.start == position
            position = part.end
        assert position == layout.total_size

    def test_single_worker_keeps_stage_one_only(self):
        layout = layout_from_sizes([100, 10])
        partitions = two_stage_partition(layout, 1)
        assert len(partitions) == 2

    def test_source_names_preserved(self):
        layout = GradientLayout.from_named_shapes([("conv.weight", (64,)), ("fc.weight", (8,))])
        partitions = two_stage_partition(layout, 4)
        assert partitions[0].source_name == "conv.weight"
        assert partitions[-1].source_name == "fc.weight"

    def test_fragment_indices_enumerate_splits(self):
        layout = layout_from_sizes([40])
        partitions = two_stage_partition(layout, 4)
        assert [p.fragment for p in partitions] == [0, 1, 2, 3]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            two_stage_partition(layout_from_sizes([10]), 0)

    def test_realistic_model_partition_sizes_bounded(self):
        """After stage two, no partition from a split layer exceeds n_g / n."""
        from repro.models.lstm_lm import LSTMLanguageModel

        model = LSTMLanguageModel(vocab_size=120, embed_dim=16, hidden_dim=24, rng=np.random.default_rng(0))
        layout = GradientLayout.from_model(model)
        n_workers = 8
        partitions = two_stage_partition(layout, n_workers)
        threshold = layout.total_size / n_workers
        for part in partitions:
            original_size = layout.sizes[part.source_layer]
            if original_size > threshold:
                assert part.size <= int(np.ceil(original_size / n_workers))


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
sizes_strategy = st.lists(st.integers(1, 500), min_size=1, max_size=20)


@given(sizes=sizes_strategy, n_workers=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_partition_covers_vector_exactly(sizes, n_workers):
    """Partitions are contiguous, disjoint and cover [0, n_g)."""
    layout = layout_from_sizes(sizes)
    partitions = two_stage_partition(layout, n_workers)
    position = 0
    for part in partitions:
        assert part.start == position
        assert part.end > part.start
        position = part.end
    assert position == layout.total_size


@given(sizes=sizes_strategy, n_workers=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_split_layers_respect_threshold(sizes, n_workers):
    """Any layer larger than n_g/n is split into fragments of near-equal size."""
    layout = layout_from_sizes(sizes)
    partitions = two_stage_partition(layout, n_workers)
    threshold = layout.total_size / n_workers
    by_source = {}
    for part in partitions:
        by_source.setdefault(part.source_layer, []).append(part)
    for source, parts in by_source.items():
        original = layout.sizes[source]
        assert sum(p.size for p in parts) == original
        if original > threshold and n_workers > 1:
            assert len(parts) == min(n_workers, original)
            assert max(p.size for p in parts) - min(p.size for p in parts) <= 1
        else:
            assert len(parts) == 1
