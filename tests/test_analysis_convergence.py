"""Tests for convergence-rate summaries."""

import pytest

from repro.analysis.convergence import (
    compare_convergence,
    epochs_to_reach,
    summarize_convergence,
)
from repro.training.timing import TimingAccumulator
from repro.training.trainer import TrainingResult
from repro.utils.logging import RunLogger


def make_result(metric, values):
    logger = RunLogger("fake")
    for epoch, value in enumerate(values):
        logger.log_scalar(metric, epoch, value)
    return TrainingResult(logger=logger, timing=TimingAccumulator(), final_metrics={metric: values[-1]})


class TestEpochsToReach:
    def test_higher_is_better(self):
        assert epochs_to_reach([0.1, 0.4, 0.8], target=0.5, higher_is_better=True) == 2

    def test_lower_is_better(self):
        assert epochs_to_reach([100, 40, 20], target=50, higher_is_better=False) == 1

    def test_never_reached(self):
        assert epochs_to_reach([0.1, 0.2], target=0.9, higher_is_better=True) is None


class TestSummarize:
    def test_accuracy_style(self):
        result = make_result("accuracy", [0.2, 0.6, 0.5])
        summary = summarize_convergence(result, "accuracy", higher_is_better=True)
        assert summary.best == 0.6
        assert summary.best_epoch == 1
        assert summary.final == 0.5
        assert summary.epochs == 3
        assert summary.reached(0.55)
        assert not summary.reached(0.7)

    def test_perplexity_style(self):
        result = make_result("perplexity", [120.0, 60.0, 70.0])
        summary = summarize_convergence(result, "perplexity", higher_is_better=False)
        assert summary.best == 60.0
        assert summary.best_epoch == 1
        assert summary.reached(65.0)

    def test_missing_series_raises(self):
        result = make_result("accuracy", [0.1])
        with pytest.raises(ValueError):
            summarize_convergence(result, "perplexity", higher_is_better=False)


class TestCompare:
    def test_rows_per_run(self):
        results = {
            "deft": make_result("accuracy", [0.2, 0.5, 0.7]),
            "topk": make_result("accuracy", [0.3, 0.6, 0.65]),
        }
        rows = compare_convergence(results, "accuracy", higher_is_better=True, target=0.6)
        assert rows["deft"]["best"] == 0.7
        assert rows["deft"]["epochs_to_target"] == 2
        assert rows["topk"]["epochs_to_target"] == 1

    def test_without_target(self):
        rows = compare_convergence({"a": make_result("accuracy", [0.5])}, "accuracy", True)
        assert "epochs_to_target" not in rows["a"]
