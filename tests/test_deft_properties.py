"""System-level property tests for DEFT's core guarantees.

These use hypothesis to generate random model layouts, accumulators and
worker counts and check the invariants the paper's correctness argument rests
on: disjoint selections, density invariance to the worker count, coverage of
every partition, and the cost ordering behind Eq. 5.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import worker_selection_cost
from repro.sparsifiers import DEFTSparsifier, GradientLayout
from repro.sparsifiers.deft.allocation import AllocationPolicy


@st.composite
def deft_problem(draw):
    """A random layout + per-worker accumulators + a density and worker count."""
    n_layers = draw(st.integers(2, 8))
    sizes = [draw(st.integers(4, 400)) for _ in range(n_layers)]
    n_workers = draw(st.integers(1, 8))
    density = draw(st.sampled_from([0.02, 0.05, 0.1, 0.3]))
    seed = draw(st.integers(0, 10_000))
    layout = GradientLayout.from_named_shapes([(f"l{i}", (s,)) for i, s in enumerate(sizes)])
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(layout.total_size)
    scales = rng.uniform(0.1, 5.0, n_layers)
    for i, sl in enumerate(layout.slices()):
        base[sl] *= scales[i]
    accs = [base + 0.05 * np.random.default_rng(seed + 1 + r).standard_normal(base.size) for r in range(n_workers)]
    return layout, accs, density, n_workers


@given(problem=deft_problem())
@settings(max_examples=40, deadline=None)
def test_deft_selections_disjoint_and_in_range(problem):
    """Workers never select the same index twice, and all indices are valid."""
    layout, accs, density, n_workers = problem
    sparsifier = DEFTSparsifier(density)
    sparsifier.setup(layout, n_workers)
    sparsifier.coordinate(0, accs)
    union = []
    for rank in range(n_workers):
        idx = sparsifier.select(0, rank, accs[rank]).indices
        if idx.size:
            assert idx.min() >= 0 and idx.max() < layout.total_size
        union.append(idx)
    flat_union = np.concatenate(union) if union else np.empty(0, dtype=np.int64)
    assert np.unique(flat_union).size == flat_union.size


@given(problem=deft_problem())
@settings(max_examples=40, deadline=None)
def test_deft_union_size_bounded_by_budget_and_floor(problem):
    """The union of the workers' selections is close to k: never more than
    k + one-per-partition (Algorithm 3's floor), never less than
    min(k, n_partitions) by more than the rounding slack."""
    layout, accs, density, n_workers = problem
    sparsifier = DEFTSparsifier(density)
    sparsifier.setup(layout, n_workers)
    sparsifier.coordinate(0, accs)
    union = np.concatenate([sparsifier.select(0, r, accs[r]).indices for r in range(n_workers)])
    k = sparsifier.global_k
    n_partitions = len(sparsifier.partitions)
    # Each worker derives its own per-layer budget from its own accumulator,
    # so the union can exceed k by the per-layer floor plus the (small)
    # worker-to-worker norm disagreement -- but it never grows with the
    # worker count the way Top-k's union does.
    assert union.size <= 1.3 * k + n_partitions
    # Algorithm 3's floor guarantees at least one selection per partition.
    assert union.size >= min(k, n_partitions)


@given(problem=deft_problem(), second_worker_count=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_deft_density_invariant_to_worker_count(problem, second_worker_count):
    """The union size (and therefore the realised density) does not grow with
    the number of workers -- the anti-build-up guarantee."""
    layout, accs, density, n_workers = problem
    base = accs[0]

    def union_size(workers):
        sparsifier = DEFTSparsifier(density)
        sparsifier.setup(layout, workers)
        worker_accs = [
            base + 0.05 * np.random.default_rng(123 + r).standard_normal(base.size)
            for r in range(workers)
        ]
        sparsifier.coordinate(0, worker_accs)
        union = np.concatenate(
            [sparsifier.select(0, r, worker_accs[r]).indices for r in range(workers)]
        )
        return union.size

    size_a = union_size(n_workers)
    size_b = union_size(second_worker_count)
    # Both are within the same budget + floor window, so their difference is
    # bounded by the partition count plus the per-partition rounding slack
    # (they cannot diverge with worker count the way Top-k's union does).
    tolerance = len(layout.sizes) * max(n_workers, second_worker_count) + 8
    assert abs(size_a - size_b) <= tolerance


@given(problem=deft_problem())
@settings(max_examples=30, deadline=None)
def test_deft_every_partition_allocated_once(problem):
    layout, accs, density, n_workers = problem
    sparsifier = DEFTSparsifier(density)
    sparsifier.setup(layout, n_workers)
    allocation = sparsifier.compute_allocation(accs[0])
    allocated = sorted(i for items in allocation for i in items)
    assert allocated == list(range(len(sparsifier.partitions)))


@given(problem=deft_problem())
@settings(max_examples=30, deadline=None)
def test_deft_makespan_obeys_list_scheduling_bound(problem):
    """Eq. 5's max-over-workers cost under the paper's bin-packing allocation
    never exceeds (total cost)/n + (largest single-partition cost) -- the
    classic greedy list-scheduling guarantee that underpins the paper's
    load-balance claim."""
    layout, accs, density, n_workers = problem
    flat = accs[0]
    sparsifier = DEFTSparsifier(density, allocation_policy=AllocationPolicy.BIN_PACKING)
    sparsifier.setup(layout, n_workers)
    allocation = sparsifier.compute_allocation(flat)
    ks = sparsifier._assign_k(flat)

    def partition_cost(i):
        return worker_selection_cost([sparsifier.partitions[i].size], [int(ks[i])])

    per_worker = [
        worker_selection_cost(
            [sparsifier.partitions[i].size for i in layers], [int(ks[i]) for i in layers]
        )
        for layers in allocation
    ]
    all_costs = [partition_cost(i) for i in range(len(sparsifier.partitions))]
    makespan = max(per_worker) if per_worker else 0.0
    bound = sum(all_costs) / n_workers + (max(all_costs) if all_costs else 0.0)
    assert makespan <= bound + 1e-6
