"""Tests for the alpha-beta cost model and topology helpers."""

import math

import pytest

from repro.comm.cost_model import AlphaBetaModel, CommunicationCost
from repro.comm.topology import (
    ClusterTopology,
    fat_node_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


class TestCommunicationCost:
    def test_total_and_addition(self):
        a = CommunicationCost(1.0, 2.0)
        b = CommunicationCost(0.5, 0.25)
        combined = a + b
        assert combined.total == pytest.approx(3.75)
        assert combined.latency == pytest.approx(1.5)


class TestAlphaBetaModel:
    def test_allgather_matches_paper_formula(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        n, k = 16, 1000
        cost = model.allgather_cost(n, k)
        assert cost.latency == pytest.approx(math.log2(n) * 1e-5)
        assert cost.bandwidth == pytest.approx(2 * (n - 1) * k * 1e-9)

    def test_single_worker_costs_nothing(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(1, 1000).total == 0.0
        assert model.allreduce_cost(1, 1000).total == 0.0
        assert model.broadcast_cost(1, 1000).total == 0.0

    def test_allgather_cost_grows_with_payload(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(8, 10_000).total > model.allgather_cost(8, 100).total

    def test_allgather_cost_grows_with_workers(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(32, 1000).total > model.allgather_cost(4, 1000).total

    def test_buildup_makes_topk_more_expensive_than_deft(self):
        """With the same configured k, Top-k's build-up (union ~ w*k values to
        reduce) costs more than DEFT's fixed k -- the Section 5.3 argument."""
        model = AlphaBetaModel()
        n, k = 16, 5000
        deft_cost = model.allgather_cost(n, k).total
        topk_cost = model.allgather_cost(n, 10 * k).total  # ~10x build-up
        assert topk_cost > deft_cost

    def test_ring_allreduce_formula(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        cost = model.allreduce_cost(8, 1_000_000)
        assert cost.latency == pytest.approx(2 * 3 * 1e-5)
        assert cost.bandwidth == pytest.approx(2 * 7 / 8 * 1_000_000 * 1e-9)

    def test_broadcast_formula(self):
        model = AlphaBetaModel(alpha=2e-5, beta=1e-9)
        cost = model.broadcast_cost(16, 100)
        assert cost.latency == pytest.approx(4 * 2e-5)
        assert cost.bandwidth == pytest.approx(4 * 100 * 1e-9)

    def test_sparsifier_step_cost_components(self):
        model = AlphaBetaModel()
        parts = model.sparsifier_step_cost(8, 100, 500, allocation_payload=20)
        assert set(parts) == {"allgather_indices", "allreduce_values", "broadcast_allocation"}
        assert model.total_step_cost(8, 100, 500, 20) == pytest.approx(
            sum(c.total for c in parts.values())
        )

    def test_dense_allreduce_is_most_expensive_for_small_k(self):
        model = AlphaBetaModel()
        n, n_g = 16, 1_000_000
        k = int(0.01 * n_g)
        sparse = model.total_step_cost(n, k, k)
        dense = model.dense_allreduce_step_cost(n, n_g)
        assert dense > sparse


class TestTopologies:
    def test_ring_diameter(self):
        assert ring_topology(8).diameter_hops() == 4
        assert ring_topology(2).diameter_hops() == 1
        assert ring_topology(1).diameter_hops() == 0

    def test_star_diameter_is_two(self):
        assert star_topology(8).diameter_hops() == 2
        assert star_topology(1).n_workers == 1

    def test_tree_depth_grows_logarithmically(self):
        shallow = tree_topology(4).diameter_hops()
        deep = tree_topology(64).diameter_hops()
        assert deep > shallow
        assert deep <= 2 * math.ceil(math.log2(64)) + 1

    def test_all_topologies_have_requested_size(self):
        for builder in (ring_topology, star_topology, tree_topology):
            assert builder(10).n_workers == 10

    def test_fat_node_topology(self):
        topo = fat_node_topology(4, 4)
        assert topo.n_workers == 16
        # Intra-node workers are directly connected.
        assert topo.path_hops(0, 3) == 1
        # Inter-node leaders form a ring.
        assert topo.path_hops(0, 4) <= 2

    def test_latency_scale_at_least_one(self):
        assert ring_topology(1).latency_scale() >= 1.0

    def test_average_hops_positive(self):
        assert ring_topology(6).average_hops() > 1.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ring_topology(0)
        with pytest.raises(ValueError):
            fat_node_topology(0, 4)

    def test_edges_listed(self):
        topo = star_topology(4)
        assert len(topo.edges()) == 3
