"""Tests for the alpha-beta cost model, topology helpers and placement pricing."""

import math

import pytest

from repro.comm.cost_model import AlphaBetaModel, CommunicationCost
from repro.comm.topology import (
    TopologySpec,
    build_topology,
    fat_node_topology,
    parse_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


class TestCommunicationCost:
    def test_total_and_addition(self):
        a = CommunicationCost(1.0, 2.0)
        b = CommunicationCost(0.5, 0.25)
        combined = a + b
        assert combined.total == pytest.approx(3.75)
        assert combined.latency == pytest.approx(1.5)


class TestAlphaBetaModel:
    def test_allgather_matches_paper_formula(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        n, k = 16, 1000
        cost = model.allgather_cost(n, k)
        assert cost.latency == pytest.approx(math.log2(n) * 1e-5)
        assert cost.bandwidth == pytest.approx(2 * (n - 1) * k * 1e-9)

    def test_single_worker_costs_nothing(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(1, 1000).total == 0.0
        assert model.allreduce_cost(1, 1000).total == 0.0
        assert model.broadcast_cost(1, 1000).total == 0.0

    def test_allgather_cost_grows_with_payload(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(8, 10_000).total > model.allgather_cost(8, 100).total

    def test_allgather_cost_grows_with_workers(self):
        model = AlphaBetaModel()
        assert model.allgather_cost(32, 1000).total > model.allgather_cost(4, 1000).total

    def test_buildup_makes_topk_more_expensive_than_deft(self):
        """With the same configured k, Top-k's build-up (union ~ w*k values to
        reduce) costs more than DEFT's fixed k -- the Section 5.3 argument."""
        model = AlphaBetaModel()
        n, k = 16, 5000
        deft_cost = model.allgather_cost(n, k).total
        topk_cost = model.allgather_cost(n, 10 * k).total  # ~10x build-up
        assert topk_cost > deft_cost

    def test_ring_allreduce_formula(self):
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        cost = model.allreduce_cost(8, 1_000_000)
        assert cost.latency == pytest.approx(2 * 3 * 1e-5)
        assert cost.bandwidth == pytest.approx(2 * 7 / 8 * 1_000_000 * 1e-9)

    def test_broadcast_formula(self):
        model = AlphaBetaModel(alpha=2e-5, beta=1e-9)
        cost = model.broadcast_cost(16, 100)
        assert cost.latency == pytest.approx(4 * 2e-5)
        assert cost.bandwidth == pytest.approx(4 * 100 * 1e-9)

    def test_sparsifier_step_cost_components(self):
        model = AlphaBetaModel()
        parts = model.sparsifier_step_cost(8, 100, 500, allocation_payload=20)
        assert set(parts) == {"allgather_indices", "allreduce_values", "broadcast_allocation"}
        assert model.total_step_cost(8, 100, 500, 20) == pytest.approx(
            sum(c.total for c in parts.values())
        )

    def test_allreduce_values_priced_as_allreduce(self):
        """Regression: the value phase is the sum all-reduce of Algorithm 1
        but was priced with the all-gather formula, overcharging the
        Figure-7 value phase.  It must match allreduce_cost -- the same
        formula the trainer's metered path applies to "values" all-reduce
        records -- and be cheaper than the all-gather for n > 2."""
        model = AlphaBetaModel(alpha=1e-5, beta=1e-9)
        n, k = 8, 500
        parts = model.sparsifier_step_cost(n, 100, k)
        expected = model.allreduce_cost(n, k)
        assert parts["allreduce_values"].latency == pytest.approx(expected.latency)
        assert parts["allreduce_values"].bandwidth == pytest.approx(expected.bandwidth)
        assert parts["allreduce_values"].bandwidth < model.allgather_cost(n, k).bandwidth

    def test_dense_allreduce_is_most_expensive_for_small_k(self):
        model = AlphaBetaModel()
        n, n_g = 16, 1_000_000
        k = int(0.01 * n_g)
        sparse = model.total_step_cost(n, k, k)
        dense = model.dense_allreduce_step_cost(n, n_g)
        assert dense > sparse


class TestTopologies:
    def test_ring_diameter(self):
        assert ring_topology(8).diameter_hops() == 4
        assert ring_topology(2).diameter_hops() == 1
        assert ring_topology(1).diameter_hops() == 0

    def test_star_diameter_is_two(self):
        assert star_topology(8).diameter_hops() == 2
        assert star_topology(1).n_workers == 1

    def test_tree_depth_grows_logarithmically(self):
        shallow = tree_topology(4).diameter_hops()
        deep = tree_topology(64).diameter_hops()
        assert deep > shallow
        assert deep <= 2 * math.ceil(math.log2(64)) + 1

    def test_all_topologies_have_requested_size(self):
        for builder in (ring_topology, star_topology, tree_topology):
            assert builder(10).n_workers == 10

    def test_fat_node_topology(self):
        topo = fat_node_topology(4, 4)
        assert topo.n_workers == 16
        # Intra-node workers are directly connected.
        assert topo.path_hops(0, 3) == 1
        # Inter-node leaders form a ring.
        assert topo.path_hops(0, 4) <= 2

    def test_latency_scale_at_least_one(self):
        assert ring_topology(1).latency_scale() >= 1.0

    def test_average_hops_positive(self):
        assert ring_topology(6).average_hops() > 1.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ring_topology(0)
        with pytest.raises(ValueError):
            fat_node_topology(0, 4)

    def test_edges_listed(self):
        topo = star_topology(4)
        assert len(topo.edges()) == 3

    def test_hops_matrix_matches_path_hops(self):
        topo = fat_node_topology(2, 4)
        matrix = topo.hops_matrix()
        for src in range(topo.n_workers):
            for dst in range(topo.n_workers):
                assert matrix[src][dst] == topo.path_hops(src, dst)
        assert matrix[0][0] == 0

    def test_neighbors_sorted_one_hop(self):
        topo = ring_topology(6)
        assert topo.neighbors(0) == [1, 5]
        assert all(topo.path_hops(0, v) == 1 for v in topo.neighbors(0))


class TestTopologySpecs:
    def test_parse_plain_names(self):
        assert parse_topology("ring") == TopologySpec("ring")
        assert parse_topology(" star ") == TopologySpec("star")

    def test_parse_parameterised(self):
        assert parse_topology("tree:3").kwargs() == {"branching": 3}
        assert parse_topology("fat_node:8x4").kwargs() == {
            "n_nodes": 8, "gpus_per_node": 4,
        }

    def test_canonical_text_round_trips(self):
        for text in ("ring", "tree:3", "fat_node:2x4"):
            assert parse_topology(text).text == text
            assert parse_topology(parse_topology(text).text) == parse_topology(text)

    def test_fat_node_requires_dimensions(self):
        with pytest.raises(ValueError, match="explicit dimensions"):
            parse_topology("fat_node")

    def test_malformed_parameters_rejected(self):
        with pytest.raises(ValueError):
            parse_topology("fat_node:8")
        with pytest.raises(ValueError):
            parse_topology("tree:x")
        with pytest.raises(ValueError):
            parse_topology("ring:3")
        with pytest.raises(ValueError):
            parse_topology("fat_node:0x4")

    def test_unknown_name_raises_registry_error(self):
        with pytest.raises(KeyError, match="unknown topology 'nonexistent'"):
            build_topology("nonexistent", 8)

    def test_size_mismatch_refused(self):
        spec = parse_topology("fat_node:2x4")
        assert spec.size_refusal(8) is None
        assert "but the cluster has 6" in spec.size_refusal(6)
        with pytest.raises(ValueError, match="but the cluster has 6"):
            spec.build(6)

    def test_flat_builds_no_graph(self):
        assert build_topology("flat", 8) is None
        assert build_topology(None, 8) is None
        assert build_topology("ring", 8).name == "ring"


def _placement_run(task, execution, topology=None, server_rank=None, **kwargs):
    from repro.sparsifiers import build_sparsifier
    from repro.training.trainer import DistributedTrainer, TrainingConfig

    config = TrainingConfig(
        n_workers=8,
        batch_size=8,
        epochs=1,
        lr=0.2,
        seed=0,
        max_iterations_per_epoch=3,
        evaluate_each_epoch=False,
        execution=execution,
        topology=topology,
        server_rank=server_rank,
        **kwargs,
    )
    trainer = DistributedTrainer(task, build_sparsifier("deft", 0.05), config)
    return trainer.train()


class TestPlacementPricing:
    """Routing server traffic over real topology paths (the tentpole)."""

    def test_star_hub_beats_star_leaf_async(self, smoke_lm_task):
        hub = _placement_run(smoke_lm_task, "async_bsp", "star", 0)
        leaf = _placement_run(smoke_lm_task, "async_bsp", "star", 7)
        assert hub.estimated_wallclock < leaf.estimated_wallclock

    def test_star_hub_beats_star_leaf_elastic(self, smoke_lm_task):
        hub = _placement_run(smoke_lm_task, "elastic", "star", 0)
        leaf = _placement_run(smoke_lm_task, "elastic", "star", 7)
        assert hub.estimated_wallclock < leaf.estimated_wallclock

    def test_ring_and_fat_node_price_differently(self, smoke_lm_task):
        ring = _placement_run(smoke_lm_task, "async_bsp", "ring", 0)
        fat = _placement_run(smoke_lm_task, "async_bsp", "fat_node:2x4", 0)
        assert ring.estimated_wallclock != fat.estimated_wallclock

    def test_placement_changes_only_the_clock(self, smoke_lm_task):
        """The topology prices traffic; it must not perturb training."""
        import numpy as np

        hub = _placement_run(smoke_lm_task, "elastic", "star", 0)
        leaf = _placement_run(smoke_lm_task, "elastic", "star", 7)
        np.testing.assert_array_equal(
            hub.logger.series("loss").values, leaf.logger.series("loss").values
        )

    def test_flat_is_bit_identical_to_no_topology(self, smoke_lm_task):
        import numpy as np

        default = _placement_run(smoke_lm_task, "async_bsp")
        flat = _placement_run(smoke_lm_task, "async_bsp", "flat")
        assert default.estimated_wallclock == flat.estimated_wallclock
        np.testing.assert_array_equal(
            default.logger.series("loss").values, flat.logger.series("loss").values
        )

    def test_collective_latency_scales_with_diameter(self, smoke_lm_task):
        """Synchronous collectives pay alpha x diameter: the 8-ring
        (diameter 4) must model slower rounds than the star (diameter 2)."""
        star = _placement_run(smoke_lm_task, "synchronous", "star")
        ring = _placement_run(smoke_lm_task, "synchronous", "ring")
        assert star.estimated_wallclock < ring.estimated_wallclock

    def test_metadata_records_placement(self, smoke_lm_task):
        result = _placement_run(smoke_lm_task, "async_bsp", "star", 0)
        assert result.logger.metadata["topology"] == "star"
        assert result.logger.metadata["server_rank"] == 0
        default = _placement_run(smoke_lm_task, "synchronous")
        assert default.logger.metadata["topology"] == "flat"


class TestPlacementRefusals:
    """Capability matrix: placements every layer refuses identically."""

    def test_server_schedule_refuses_unplaced_graph_topology(self, smoke_lm_task):
        with pytest.raises(ValueError, match="set server_rank"):
            _placement_run(smoke_lm_task, "async_bsp", "star")

    def test_serverless_schedule_refuses_server_rank(self, smoke_lm_task):
        with pytest.raises(ValueError, match="no parameter server to place"):
            _placement_run(smoke_lm_task, "synchronous", "star", 0)

    def test_server_rank_out_of_range(self, smoke_lm_task):
        with pytest.raises(ValueError, match="out of range"):
            _placement_run(smoke_lm_task, "async_bsp", "star", 8)

    def test_runspec_validate_agrees(self):
        from repro.api import ClusterSpec, ExecutionSpec, RunSpec

        spec = RunSpec(
            cluster=ClusterSpec(n_workers=8, topology="ring"),
            execution=ExecutionSpec(model="async_bsp"),
        )
        with pytest.raises(ValueError, match="set server_rank"):
            spec.validate()
        placed = RunSpec(
            cluster=ClusterSpec(n_workers=8, topology="ring", server_rank=3),
            execution=ExecutionSpec(model="async_bsp"),
        )
        placed.validate()


class TestPlacementGridExperiment:
    def test_runs_through_sweep_with_cache_hits_on_rerun(self, tmp_path):
        from repro.experiments import placement_grid
        from repro.sweep import ResultCache

        cache = ResultCache(root=tmp_path / "cache")
        kwargs = dict(
            scale="smoke",
            executions=("async_bsp", "gossip"),
            topologies=("star",),
            n_workers=4,
            max_iterations_per_epoch=2,
            cache=cache,
        )
        first = placement_grid.run(**kwargs)
        assert all("error" not in cell for cell in first["cells"].values())
        entries = list((tmp_path / "cache").rglob("*.json"))
        assert len(entries) == len(first["cells"])
        # Rerun: every cell must be served from the spec-addressed cache
        # with identical numbers.
        second = placement_grid.run(**kwargs)
        assert second["cells"] == first["cells"]

    def test_penalty_relative_to_best_placement(self):
        from repro.experiments import placement_grid

        result = placement_grid.run(
            scale="smoke",
            executions=("async_bsp",),
            topologies=("star",),
            n_workers=4,
            max_iterations_per_epoch=2,
        )
        cells = result["cells"]
        hub = cells["star|async_bsp|0"]
        leaf = cells["star|async_bsp|3"]
        assert hub["placement_penalty"] == pytest.approx(1.0)
        assert leaf["placement_penalty"] > 1.0
