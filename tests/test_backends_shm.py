"""Unit tests for the shared-memory primitives of the multiprocess backend.

These exercise :mod:`repro.backends.shm` entirely in-process: arena
lifetime (create, view, unlink, idempotent close), the seqlock command
protocol (publish/ack ordering, torn-read detection) and the bounded
mailbox rings (FIFO order, drop-oldest overflow).
"""

import os

import numpy as np
import pytest

from repro.backends.shm import (
    HEADER_FIELDS,
    OP_BARRIER,
    OP_REDUCE,
    OP_SHUTDOWN,
    SEGMENT_PREFIX,
    ControlBlock,
    MailboxRing,
    SharedArena,
    list_repro_segments,
)


class TestSharedArena:
    def test_create_view_and_unlink(self):
        arena = SharedArena("unit", (4, 8))
        assert arena.array.shape == (4, 8)
        assert arena.array.dtype == np.float64
        assert (arena.array == 0).all()
        assert arena.name.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-")
        assert arena.name in list_repro_segments()
        arena.array[2, 3] = 7.5
        assert arena.array[2, 3] == 7.5
        arena.close()
        assert arena.name not in list_repro_segments()

    def test_close_is_idempotent(self):
        arena = SharedArena("twice", (8,))
        arena.close()
        arena.close()
        assert arena.array is None

    def test_int64_dtype(self):
        arena = SharedArena("ints", (16,), dtype=np.int64)
        try:
            arena.array[:] = np.arange(16)
            assert arena.array.dtype == np.int64
            assert int(arena.array.sum()) == 120
        finally:
            arena.close()

    def test_owned_in_creator(self):
        arena = SharedArena("owner", (2,))
        try:
            assert arena.owned
        finally:
            arena.close()


def _make_ctrl(n_procs=3, n_rings=4):
    vec = np.zeros(ControlBlock.size_for(n_procs, n_rings), dtype=np.int64)
    return ControlBlock(vec, n_procs, n_rings)


class TestControlBlock:
    def test_size_for_matches_layout(self):
        assert ControlBlock.size_for(3, 4) == HEADER_FIELDS + 2 * 3 + 2 * 4

    def test_rejects_wrong_vector(self):
        with pytest.raises(ValueError):
            ControlBlock(np.zeros(4, dtype=np.int64), 2, 2)
        with pytest.raises(ValueError):
            ControlBlock(np.zeros(64, dtype=np.float64), 2, 2)

    def test_publish_then_read(self):
        ctrl = _make_ctrl()
        seq = ctrl.publish(OP_REDUCE, rows=4, cols=10, rop=1, buf_index=1)
        assert seq == 1
        command = ctrl.read_command(last_seq=0)
        assert command == (1, OP_REDUCE, 4, 10, 1, 1)
        # Nothing new under the same sequence.
        assert ctrl.read_command(last_seq=1) is None

    def test_ack_protocol(self):
        ctrl = _make_ctrl(n_procs=2)
        seq = ctrl.publish(OP_BARRIER)
        assert not ctrl.acked(seq)
        ctrl.ack(0, seq)
        assert not ctrl.acked(seq)
        ctrl.ack(1, seq)
        assert ctrl.acked(seq)

    def test_sequences_monotonic(self):
        ctrl = _make_ctrl()
        assert ctrl.publish(OP_REDUCE) == 1
        assert ctrl.publish(OP_BARRIER) == 2
        assert ctrl.publish(OP_SHUTDOWN) == 3
        assert ctrl.seq == 3

    def test_torn_read_returns_none(self):
        # Simulate a concurrent publish racing the field copy: the header's
        # sequence moves between the two reads, so the read must be retried.
        class TornHeader:
            def __init__(self, header):
                self._header = header
                self._reads = 0

            def __getitem__(self, index):
                if index == 0:
                    self._reads += 1
                    return self._header[0] + (0 if self._reads == 1 else 1)
                return self._header[index]

        torn = _make_ctrl()
        torn.publish(OP_REDUCE, rows=1)
        torn.header = TornHeader(torn.header)
        assert torn.read_command(last_seq=0) is None

    def test_error_flags(self):
        ctrl = _make_ctrl(n_procs=2)
        assert (ctrl.errors == 0).all()
        ctrl.flag_error(1, code=5)
        assert int(ctrl.errors[1]) == 5

    def test_pack_header_roundtrip(self):
        ctrl = _make_ctrl()
        ctrl.publish(OP_REDUCE, rows=2, cols=3, rop=1, buf_index=1, aux=9)
        packed = ctrl.pack_header()
        assert len(packed) == 8 * HEADER_FIELDS


class TestMailboxRing:
    def _make(self, n_rings=3, capacity=4):
        ctrl = _make_ctrl(n_procs=2, n_rings=n_rings)
        records = np.zeros((n_rings, capacity, MailboxRing.RECORD_FIELDS), dtype=np.int64)
        return MailboxRing(records, ctrl)

    def test_fifo_order(self):
        mbox = self._make()
        mbox.append(0, kind=1, peer=2, payload=100, tag=7)
        mbox.append(0, kind=2, peer=1, payload=200, tag=8)
        assert mbox.pending(0) == 2
        assert mbox.drain(0) == [(1, 2, 100, 7), (2, 1, 200, 8)]
        assert mbox.pending(0) == 0

    def test_rings_are_independent(self):
        mbox = self._make()
        mbox.append(0, 1, 0, 10)
        mbox.append(2, 1, 0, 30)
        assert mbox.pending(0) == 1
        assert mbox.pending(1) == 0
        assert mbox.pending(2) == 1
        assert len(mbox) == 2

    def test_overflow_drops_oldest(self):
        mbox = self._make(capacity=3)
        for payload in range(5):
            mbox.append(0, 1, 0, payload)
        assert mbox.dropped == 2
        assert mbox.pending(0) == 3
        payloads = [record[2] for record in mbox.drain(0)]
        assert payloads == [2, 3, 4]

    def test_rejects_mismatched_shapes(self):
        ctrl = _make_ctrl(n_procs=2, n_rings=3)
        with pytest.raises(ValueError):
            MailboxRing(np.zeros((3, 4, 2), dtype=np.int64), ctrl)
        with pytest.raises(ValueError):
            MailboxRing(np.zeros((2, 4, 4), dtype=np.int64), ctrl)
