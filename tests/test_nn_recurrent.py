"""Tests for LSTMCell / LSTM."""

import numpy as np

from repro import nn
from repro.tensor import Tensor
from tests.test_tensor_autograd import check_gradient

RNG = np.random.default_rng(9)


class TestLSTMCell:
    def test_output_shapes(self):
        cell = nn.LSTMCell(6, 10, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((4, 6)).astype(np.float32))
        h, c = cell(x)
        assert h.shape == (4, 10)
        assert c.shape == (4, 10)

    def test_accepts_explicit_state(self):
        cell = nn.LSTMCell(6, 10, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((4, 6)).astype(np.float32))
        h0 = Tensor(np.ones((4, 10), dtype=np.float32))
        c0 = Tensor(np.ones((4, 10), dtype=np.float32))
        h1, c1 = cell(x, (h0, c0))
        h_default, _ = cell(x)
        assert not np.allclose(h1.numpy(), h_default.numpy())

    def test_parameter_shapes(self):
        cell = nn.LSTMCell(6, 10)
        assert cell.weight_ih.shape == (40, 6)
        assert cell.weight_hh.shape == (40, 10)
        assert cell.bias_ih.shape == (40,)

    def test_hidden_state_bounded_by_tanh(self):
        cell = nn.LSTMCell(6, 10, rng=np.random.default_rng(0))
        x = Tensor((RNG.standard_normal((4, 6)) * 10).astype(np.float32))
        h, _ = cell(x)
        assert np.abs(h.numpy()).max() <= 1.0 + 1e-6

    def test_matches_manual_lstm_equations(self):
        """One step of the cell equals the textbook gate equations."""
        cell = nn.LSTMCell(3, 2, rng=np.random.default_rng(0))
        x_np = RNG.standard_normal((1, 3)).astype(np.float32)
        h_np = RNG.standard_normal((1, 2)).astype(np.float32)
        c_np = RNG.standard_normal((1, 2)).astype(np.float32)
        h_out, c_out = cell(Tensor(x_np), (Tensor(h_np), Tensor(c_np)))

        gates = x_np @ cell.weight_ih.numpy().T + h_np @ cell.weight_hh.numpy().T
        gates = gates + cell.bias_ih.numpy() + cell.bias_hh.numpy()
        sig = lambda v: 1.0 / (1.0 + np.exp(-v))
        i, f, g, o = gates[:, :2], gates[:, 2:4], gates[:, 4:6], gates[:, 6:8]
        c_expected = sig(f) * c_np + sig(i) * np.tanh(g)
        h_expected = sig(o) * np.tanh(c_expected)
        np.testing.assert_allclose(c_out.numpy(), c_expected, atol=1e-5)
        np.testing.assert_allclose(h_out.numpy(), h_expected, atol=1e-5)

    def test_gradient_through_one_step(self):
        w_ih = RNG.standard_normal((8, 3)) * 0.3
        w_hh = RNG.standard_normal((8, 2)) * 0.3
        x = RNG.standard_normal((2, 3))

        def build(tensors):
            cell = nn.LSTMCell(3, 2, rng=np.random.default_rng(0))
            cell.weight_ih.data = tensors[0].data
            cell.weight_hh.data = tensors[1].data
            # Re-wire parameters so the graph is built from the test tensors.
            cell._parameters["weight_ih"] = tensors[0]
            cell._parameters["weight_hh"] = tensors[1]
            object.__setattr__(cell, "weight_ih", tensors[0])
            object.__setattr__(cell, "weight_hh", tensors[1])
            h, c = cell(Tensor(x, dtype=np.float64))
            return (h * h).sum() + (c * c).sum()

        check_gradient(build, [w_ih, w_hh], tolerance=1e-5)


class TestLSTM:
    def test_output_shapes(self):
        lstm = nn.LSTM(5, 7, num_layers=2, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((3, 6, 5)).astype(np.float32))
        out, state = lstm(x)
        assert out.shape == (3, 6, 7)
        assert len(state) == 2
        assert state[0][0].shape == (3, 7)

    def test_parameter_count(self):
        lstm = nn.LSTM(5, 7, num_layers=2)
        # layer0: 4*7*(5+7) + 2*4*7 ; layer1: 4*7*(7+7) + 2*4*7
        expected = (28 * 5 + 28 * 7 + 28 + 28) + (28 * 7 + 28 * 7 + 28 + 28)
        assert sum(p.size for p in lstm.parameters()) == expected

    def test_state_carries_over(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 3, 4)).astype(np.float32))
        out1, state = lstm(x)
        out2, _ = lstm(x, state)
        assert not np.allclose(out1.numpy(), out2.numpy())

    def test_gradients_reach_all_parameters(self):
        lstm = nn.LSTM(4, 6, num_layers=2, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 5, 4)).astype(np.float32))
        out, _ = lstm(x)
        (out * out).sum().backward()
        for name, p in lstm.named_parameters():
            assert p.grad is not None, name
            assert np.abs(p.grad).sum() > 0, name

    def test_longer_sequence_changes_output(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, 4, 4)).astype(np.float32)
        out_full, _ = lstm(Tensor(x))
        out_prefix, _ = lstm(Tensor(x[:, :2]))
        np.testing.assert_allclose(
            out_full.numpy()[:, :2], out_prefix.numpy(), atol=1e-5
        )
