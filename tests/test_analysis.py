"""Tests for the analysis package (cost model, speedup, density, properties, series)."""

import numpy as np
import pytest

from repro.analysis.cost import (
    deft_selection_cost,
    layer_selection_cost,
    topk_selection_cost,
    trivial_selection_cost,
    worker_selection_cost,
)
from repro.analysis.density import buildup_factor, density_statistics, union_density
from repro.analysis.properties import measure_properties
from repro.analysis.series import compare_final, epoch_series, iteration_series, subsample
from repro.analysis.speedup import (
    SpeedupCurve,
    deft_speedup_from_costs,
    linear_speedup,
    measure_selection_speedup,
    trivial_speedup,
)
from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig
from tests.conftest import make_smoke_lm_task


class TestCostModel:
    def test_topk_cost(self):
        assert topk_selection_cost(1024, 16) == pytest.approx(1024 * 4)

    def test_layer_cost_zero_for_empty_selection(self):
        assert layer_selection_cost(100, 0) == 0.0
        assert layer_selection_cost(0, 5) == 0.0

    def test_worker_cost_sums_layers(self):
        assert worker_selection_cost([100, 200], [4, 16]) == pytest.approx(100 * 2 + 200 * 4)

    def test_worker_cost_length_mismatch(self):
        with pytest.raises(ValueError):
            worker_selection_cost([100], [4, 16])

    def test_deft_cost_is_max(self):
        assert deft_selection_cost([10.0, 50.0, 20.0]) == 50.0
        assert deft_selection_cost([]) == 0.0

    def test_trivial_cost_formula(self):
        n_g, k, n = 10000, 100, 4
        expected = (n_g / n) * np.log2(k / n)
        assert trivial_selection_cost(n_g, k, n) == pytest.approx(expected)

    def test_trivial_cost_validation(self):
        with pytest.raises(ValueError):
            trivial_selection_cost(100, 10, 0)

    def test_costs_floor_log_at_one(self):
        # k=1 and k=2 both cost one scan per element, never less.
        assert layer_selection_cost(100, 1) == 100.0
        assert topk_selection_cost(100, 1) == 100.0


class TestSpeedup:
    def test_linear(self):
        assert linear_speedup(8) == 8.0

    def test_trivial_exceeds_linear(self):
        """Eq. 9: f_trivial(n) >= n for realistic n_g, k."""
        n_g, k = 1_000_000, 10_000
        for n in (2, 4, 8, 16, 32):
            assert trivial_speedup(n_g, k, n) >= n

    def test_trivial_speedup_monotone_in_workers(self):
        n_g, k = 100_000, 1_000
        values = [trivial_speedup(n_g, k, n) for n in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_deft_speedup_from_costs(self):
        n_g, k = 10000, 100
        baseline = topk_selection_cost(n_g, k)
        assert deft_speedup_from_costs(n_g, k, [baseline / 4, baseline / 8]) == pytest.approx(4.0)
        assert deft_speedup_from_costs(n_g, k, []) == float("inf")

    def test_curve_container(self):
        curve = SpeedupCurve("test")
        curve.append(2, 3.0)
        curve.append(4, 9.0)
        assert curve.as_dict() == {2: 3.0, 4: 9.0}

    def test_measure_selection_speedup_analytic_dominates(self, small_layout, small_acc):
        """The Eq.-9 ordering deft >= trivial >= linear must hold for the
        analytic curves on a realistic layered accumulator."""
        curves = measure_selection_speedup(
            small_layout, small_acc, density=0.05, worker_counts=(2, 4), measure_wallclock=False
        )
        assert set(curves) == {"linear", "trivial", "deft_analytic"}
        for n in (2, 4):
            assert curves["trivial"].as_dict()[n] >= curves["linear"].as_dict()[n] - 1e-9
            assert curves["deft_analytic"].as_dict()[n] >= curves["trivial"].as_dict()[n] * 0.5

    def test_measure_selection_speedup_wallclock_curve_present(self, small_layout, small_acc):
        curves = measure_selection_speedup(
            small_layout, small_acc, density=0.05, worker_counts=(1, 2), repeats=1, measure_wallclock=True
        )
        assert "deft_measured" in curves
        assert curves["deft_measured"].as_dict()[1] == 1.0

    def test_wrong_accumulator_length_rejected(self, small_layout):
        with pytest.raises(ValueError):
            measure_selection_speedup(small_layout, np.zeros(3), 0.1, (2,), measure_wallclock=False)


class TestDensityAnalysis:
    def test_union_density_counts_unique(self):
        per_worker = [np.array([0, 1, 2]), np.array([2, 3]), np.array([0, 4])]
        assert union_density(per_worker, 10) == pytest.approx(0.5)

    def test_union_density_empty(self):
        assert union_density([], 10) == 0.0

    def test_union_density_validation(self):
        with pytest.raises(ValueError):
            union_density([np.array([0])], 0)

    def test_statistics_from_training_run(self, smoke_lm_task):
        sparsifier = build_sparsifier("topk", 0.05)
        config = TrainingConfig(n_workers=4, batch_size=8, epochs=1, lr=0.2, seed=0,
                                max_iterations_per_epoch=3, evaluate_each_epoch=False)
        result = DistributedTrainer(smoke_lm_task, sparsifier, config).train()
        stats = density_statistics(result, 0.05)
        assert stats["mean"] > 0.05
        assert stats["max"] >= stats["mean"] >= stats["min"]
        assert buildup_factor(result, 0.05) == pytest.approx(stats["mean"] / 0.05)


class TestSeriesHelpers:
    def _result(self):
        task = make_smoke_lm_task()
        sparsifier = build_sparsifier("deft", 0.05)
        config = TrainingConfig(n_workers=2, batch_size=8, epochs=1, lr=0.2, seed=0,
                                max_iterations_per_epoch=3)
        return DistributedTrainer(task, sparsifier, config).train()

    def test_iteration_and_epoch_series(self):
        result = self._result()
        steps, values = iteration_series(result, "density")
        assert len(steps) == len(values) == 3
        epochs, metric = epoch_series(result, "perplexity")
        assert len(epochs) == 1

    def test_subsample(self):
        steps = list(range(1000))
        values = [float(s) for s in steps]
        sub_steps, sub_values = subsample(steps, values, max_points=10)
        assert len(sub_steps) == 10
        assert sub_steps[0] == 0 and sub_steps[-1] == 999

    def test_subsample_short_series_untouched(self):
        steps, values = subsample([1, 2], [3.0, 4.0], max_points=10)
        assert steps == [1, 2]

    def test_compare_final(self):
        result = self._result()
        comparison = compare_final({"deft": result}, "perplexity")
        assert "deft" in comparison
        assert comparison["deft"] > 0


class TestProperties:
    def test_measure_properties_rows(self, smoke_lm_task):
        rows = measure_properties(
            smoke_lm_task,
            ["topk", "deft"],
            density=0.05,
            n_workers=4,
            iterations=2,
            batch_size=8,
            lr=0.2,
        )
        by_name = {row.name: row for row in rows}
        assert by_name["topk"].has_buildup
        assert not by_name["deft"].has_buildup
        assert by_name["deft"].overhead_seconds >= 0
        row_dict = by_name["topk"].as_row()
        assert row_dict["Gradient build-up"] == "Yes"
        assert row_dict["Sparsifier"] == "topk"
