"""Tests for repro.utils.seeding."""

import numpy as np
import pytest

from repro.utils.seeding import (
    SeedSequenceFactory,
    derive_seed,
    new_rng,
    spawn_worker_rngs,
    stable_shuffle,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_different_keys_give_different_seeds(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 2, 4)

    def test_different_roots_give_different_seeds(self):
        assert derive_seed(1, 7) != derive_seed(2, 7)

    def test_seed_is_nonnegative_63bit(self):
        for keys in [(0,), (1, 2), (999, 10**9)]:
            seed = derive_seed(42, *keys)
            assert 0 <= seed < 2**63


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(5, 1).random(4)
        b = new_rng(5, 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = new_rng(None).random(3)
        b = new_rng(None).random(3)
        np.testing.assert_array_equal(a, b)

    def test_no_keys_uses_root_directly(self):
        a = new_rng(77).random(3)
        b = np.random.default_rng(77).random(3)
        np.testing.assert_array_equal(a, b)


class TestSeedSequenceFactory:
    def test_rng_reproducible_per_key(self):
        factory = SeedSequenceFactory(9)
        a = factory.rng("worker", 0).random(5)
        b = factory.rng("worker", 0).random(5)
        np.testing.assert_array_equal(a, b)

    def test_rng_differs_between_keys(self):
        factory = SeedSequenceFactory(9)
        a = factory.rng("worker", 0).random(5)
        b = factory.rng("worker", 1).random(5)
        assert not np.array_equal(a, b)

    def test_string_and_int_keys_supported(self):
        factory = SeedSequenceFactory(3)
        assert factory.seed_for("model") != factory.seed_for("loader")
        assert factory.seed_for(0) != factory.seed_for(1)

    def test_unsupported_key_type_raises(self):
        factory = SeedSequenceFactory(3)
        with pytest.raises(TypeError):
            factory.seed_for(3.14)

    def test_spawn_creates_independent_child(self):
        factory = SeedSequenceFactory(3)
        child = factory.spawn("phase", 1)
        assert isinstance(child, SeedSequenceFactory)
        assert child.root_seed == factory.seed_for("phase", 1)

    def test_default_root_seed(self):
        assert SeedSequenceFactory().root_seed == SeedSequenceFactory(None).root_seed


class TestWorkerRngs:
    def test_spawn_worker_rngs_are_independent(self):
        rngs = spawn_worker_rngs(1, 4)
        draws = [r.random(8) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_worker_rngs_reproducible(self):
        a = [r.random(3) for r in spawn_worker_rngs(2, 3)]
        b = [r.random(3) for r in spawn_worker_rngs(2, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestStableShuffle:
    def test_is_permutation(self):
        items = list(range(20))
        shuffled = stable_shuffle(items, seed=4)
        assert sorted(shuffled) == items

    def test_deterministic(self):
        items = list("abcdefgh")
        assert stable_shuffle(items, 7) == stable_shuffle(items, 7)

    def test_different_seeds_differ(self):
        items = list(range(50))
        assert stable_shuffle(items, 1) != stable_shuffle(items, 2)
