"""Unit tests for the robust-aggregation rules."""

import numpy as np
import pytest

from repro.aggregators import (
    Aggregator,
    KrumAggregator,
    MeanAggregator,
    MedianAggregator,
    available_aggregators,
    build_aggregator,
)


def make(name, n_workers=8, n_byzantine=0, **kwargs):
    agg = build_aggregator(name, n_byzantine=n_byzantine, **kwargs)
    agg.setup(n_workers)
    return agg


def benign_with_outliers(rng, n_benign=6, n_byzantine=2, m=64, magnitude=100.0):
    """Benign rows ~N(1, 0.1) plus large adversarial rows."""
    benign = 1.0 + 0.1 * rng.standard_normal((n_benign, m))
    outliers = magnitude * np.ones((n_byzantine, m))
    return np.concatenate([benign, outliers], axis=0), benign


class TestRegistry:
    def test_available_names(self):
        assert available_aggregators() == [
            "centered_clipping",
            "geometric_median",
            "krum",
            "mean",
            "median",
            "multi_krum",
            "staleness_weighted_mean",
            "trimmed_mean",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_aggregator("nonexistent")

    def test_case_insensitive(self):
        assert isinstance(build_aggregator("KRUM"), KrumAggregator)

    def test_kwargs_forwarded(self):
        agg = build_aggregator("centered_clipping", tau=0.5, clip_iterations=2)
        assert agg.tau == 0.5
        assert agg.clip_iterations == 2

    def test_negative_byzantine_rejected(self):
        with pytest.raises(ValueError):
            build_aggregator("mean", n_byzantine=-1)


class TestMean:
    def test_matches_numpy_mean(self, rng):
        matrix = rng.standard_normal((4, 32))
        agg = make("mean", n_workers=4)
        np.testing.assert_allclose(agg.aggregate(matrix), matrix.mean(axis=0))

    def test_reduced_path_matches_matrix_path(self, rng):
        matrix = rng.standard_normal((4, 32))
        agg = make("mean", n_workers=4)
        np.testing.assert_allclose(agg.aggregate_reduced(matrix.sum(axis=0)), agg.aggregate(matrix))

    def test_uses_allreduce_path(self):
        assert MeanAggregator().requires_individual_contributions is False
        assert MedianAggregator().requires_individual_contributions is True

    def test_not_robust_flag(self):
        assert MeanAggregator().is_robust is False
        assert KrumAggregator().is_robust is True


class TestMedian:
    def test_ignores_outliers(self, rng):
        matrix, benign = benign_with_outliers(rng)
        agg = make("median", n_byzantine=2)
        result = agg.aggregate(matrix)
        assert np.all(result <= benign.max(axis=0))
        assert np.all(result >= benign.min(axis=0))

    def test_mean_shifted_by_outliers(self, rng):
        """Contrast case: the plain mean is dominated by the outliers."""
        matrix, benign = benign_with_outliers(rng)
        shifted = make("mean").aggregate(matrix)
        assert np.all(shifted > benign.max(axis=0))


class TestTrimmedMean:
    def test_trims_outliers(self, rng):
        matrix, benign = benign_with_outliers(rng, n_byzantine=2)
        agg = make("trimmed_mean", n_byzantine=2)
        result = agg.aggregate(matrix)
        assert np.all(result <= benign.max(axis=0) + 1e-12)

    def test_zero_trim_equals_mean(self, rng):
        matrix = rng.standard_normal((5, 16))
        np.testing.assert_allclose(
            make("trimmed_mean", n_workers=5).aggregate(matrix), matrix.mean(axis=0)
        )

    def test_capacity_validated_at_setup(self):
        agg = build_aggregator("trimmed_mean", n_byzantine=2)
        with pytest.raises(ValueError):
            agg.setup(4)

    def test_explicit_trim_overrides_byzantine(self, rng):
        matrix = np.concatenate([np.zeros((4, 8)), 50.0 * np.ones((1, 8))], axis=0)
        agg = make("trimmed_mean", n_workers=5, trim=1)
        np.testing.assert_allclose(agg.aggregate(matrix), np.zeros(8))


class TestKrum:
    def test_selects_a_benign_row(self, rng):
        matrix, benign = benign_with_outliers(rng)
        result = make("krum", n_byzantine=2).aggregate(matrix)
        assert any(np.allclose(result, row) for row in benign)

    def test_multi_krum_averages_benign_rows(self, rng):
        matrix, benign = benign_with_outliers(rng)
        result = make("multi_krum", n_byzantine=2).aggregate(matrix)
        assert np.all(result <= benign.max(axis=0))
        assert np.all(result >= benign.min(axis=0))

    def test_multi_krum_n_selected(self, rng):
        matrix = rng.standard_normal((6, 16))
        full = make("multi_krum", n_workers=6, n_selected=6).aggregate(matrix)
        np.testing.assert_allclose(full, matrix.mean(axis=0))

    def test_identical_rows_are_fixed_point(self):
        matrix = np.tile(np.arange(8.0), (5, 1))
        np.testing.assert_allclose(make("krum", n_workers=5).aggregate(matrix), np.arange(8.0))

    @pytest.mark.parametrize("name", ["krum", "multi_krum"])
    def test_capacity_validated_at_setup(self, name):
        """n=4, f=2 leaves no genuine nearest neighbour; colluding attackers
        would win the score deterministically, so the config is rejected."""
        agg = build_aggregator(name, n_byzantine=2)
        with pytest.raises(ValueError):
            agg.setup(4)

    def test_minimum_viable_capacity_accepted(self):
        make("krum", n_workers=4, n_byzantine=1)


class TestGeometricMedian:
    def test_resists_outliers(self, rng):
        matrix, benign = benign_with_outliers(rng)
        result = make("geometric_median", n_byzantine=2).aggregate(matrix)
        # The geometric median stays near the benign cluster center (~1.0),
        # far below the outlier magnitude (100).
        assert np.all(result < 2.0)

    def test_exact_for_collinear_points(self):
        matrix = np.array([[0.0], [1.0], [10.0]])
        result = make("geometric_median", n_workers=3).aggregate(matrix)
        assert result[0] == pytest.approx(1.0, abs=1e-3)


class TestCenteredClipping:
    def test_bounded_influence(self, rng):
        matrix, benign = benign_with_outliers(rng)
        agg = make("centered_clipping", n_byzantine=2, tau=1.0)
        result = agg.aggregate(matrix)
        # Each of the two outlier rows can move the center by at most
        # tau/n per inner iteration.
        center = np.median(matrix, axis=0)
        bound = 2 * agg.clip_iterations * agg.tau / matrix.shape[0]
        assert np.linalg.norm(result - center) <= bound + np.linalg.norm(benign.std(axis=0)) + 1.0

    def test_persistent_center_across_calls(self, rng):
        agg = make("centered_clipping", n_workers=2, tau=100.0)
        first = agg.aggregate(rng.standard_normal((2, 4)), indices=np.arange(4))
        np.testing.assert_allclose(agg._center[:4], first)
        agg.aggregate(rng.standard_normal((2, 2)), indices=np.array([1, 3]))
        # Untouched coordinates keep their value from the first call.
        np.testing.assert_allclose(agg._center[[0, 2]], first[[0, 2]])

    def test_reset_clears_center(self, rng):
        agg = make("centered_clipping", n_workers=2)
        agg.aggregate(rng.standard_normal((2, 4)), indices=np.arange(4))
        agg.reset()
        assert agg._center is None


class TestDegenerateCases:
    @pytest.mark.parametrize("name", available_aggregators())
    def test_empty_union(self, name):
        agg = make(name, n_workers=4, n_byzantine=1)
        result = agg.aggregate(np.zeros((4, 0)))
        assert result.shape == (0,)

    @pytest.mark.parametrize("name", available_aggregators())
    def test_single_worker_returns_row(self, name, rng):
        row = rng.standard_normal((1, 16))
        agg = make(name, n_workers=1)
        if name == "centered_clipping":
            # Clipping around the row's own median is not the identity;
            # just require a finite result of the right shape.
            assert np.isfinite(agg.aggregate(row)).all()
        else:
            np.testing.assert_allclose(agg.aggregate(row), row[0])

    @pytest.mark.parametrize("name", available_aggregators())
    def test_benign_consensus_recovered(self, name):
        """When every worker sends the same vector, every rule returns it."""
        matrix = np.tile(np.linspace(-1, 1, 12), (6, 1))
        agg = make(name, n_workers=6, n_byzantine=1)
        np.testing.assert_allclose(agg.aggregate(matrix), matrix[0], atol=1e-9)

    def test_all_byzantine_rejected_at_setup(self):
        agg = build_aggregator("krum", n_byzantine=4)
        with pytest.raises(ValueError):
            agg.setup(4)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Aggregator().aggregate(np.zeros((2, 2)))
        with pytest.raises(NotImplementedError):
            MedianAggregator().aggregate_reduced(np.zeros(2))


class TestStalenessWeightedMean:
    def test_without_ages_equals_mean(self, rng):
        matrix = rng.standard_normal((4, 10))
        agg = make("staleness_weighted_mean", n_workers=4)
        np.testing.assert_allclose(agg.aggregate(matrix), matrix.mean(axis=0))

    def test_fresh_contributions_weigh_more(self):
        matrix = np.array([[1.0, 1.0], [3.0, 3.0]])
        agg = make("staleness_weighted_mean", n_workers=2)
        agg.set_ages([0.0, 3.0])  # second row is 3 versions stale
        result = agg.aggregate(matrix)
        # Weighted toward the fresh row: below the plain mean of 2.0.
        assert np.all(result < 2.0)
        assert np.all(result > 1.0)

    def test_gamma_zero_recovers_mean(self):
        matrix = np.array([[1.0], [3.0]])
        agg = make("staleness_weighted_mean", n_workers=2, gamma=0.0)
        agg.set_ages([0.0, 10.0])
        np.testing.assert_allclose(agg.aggregate(matrix), [2.0])

    def test_classic_decay_weights(self):
        agg = make("staleness_weighted_mean", n_workers=2, gamma=1.0)
        agg.set_ages([0.0, 1.0])
        weights = agg.weights_for(2)
        np.testing.assert_allclose(weights, [2.0 / 3.0, 1.0 / 3.0])

    def test_ages_are_one_shot(self):
        matrix = np.array([[1.0], [3.0]])
        agg = make("staleness_weighted_mean", n_workers=2)
        agg.set_ages([0.0, 3.0])
        agg.aggregate(matrix)
        # The second call has no announced ages: plain mean again.
        np.testing.assert_allclose(agg.aggregate(matrix), [2.0])

    def test_mismatched_age_count_raises(self):
        """Regression: a mis-announced ages vector used to degrade silently
        to the plain mean, dropping the staleness protection with no
        signal; a length mismatch is a schedule bug and must raise."""
        matrix = np.array([[1.0], [3.0]])
        agg = make("staleness_weighted_mean", n_workers=2)
        agg.set_ages([0.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="one age per aggregated row"):
            agg.aggregate(matrix)

    def test_no_announced_ages_still_uniform(self):
        """The documented synchronous fallback survives the mismatch fix."""
        matrix = np.array([[1.0], [3.0]])
        agg = make("staleness_weighted_mean", n_workers=2)
        np.testing.assert_allclose(agg.aggregate(matrix), [2.0])

    def test_negative_age_rejected(self):
        agg = make("staleness_weighted_mean", n_workers=2)
        with pytest.raises(ValueError):
            agg.set_ages([-1.0, 0.0])

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            build_aggregator("staleness_weighted_mean", gamma=-0.5)
