"""Tests for the top-k / threshold selection kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.topk_ops import (
    select_magnitude,
    threshold_indices,
    topk_indices,
    topk_threshold,
    topk_values,
)


class TestTopkIndices:
    def test_selects_largest_magnitudes(self):
        values = np.array([0.1, -5.0, 3.0, 0.0, -2.0])
        idx = topk_indices(values, 2)
        assert set(idx.tolist()) == {1, 2}

    def test_sorted_by_decreasing_magnitude(self):
        values = np.array([1.0, -4.0, 3.0, -2.0])
        idx = topk_indices(values, 3)
        mags = np.abs(values[idx])
        assert list(mags) == sorted(mags, reverse=True)

    def test_k_zero_returns_empty(self):
        assert topk_indices(np.arange(5.0), 0).size == 0

    def test_k_negative_returns_empty(self):
        assert topk_indices(np.arange(5.0), -3).size == 0

    def test_k_larger_than_n_returns_all(self):
        values = np.array([1.0, -2.0, 0.5])
        idx = topk_indices(values, 10)
        assert sorted(idx.tolist()) == [0, 1, 2]

    def test_empty_input(self):
        assert topk_indices(np.empty(0), 3).size == 0

    def test_flattens_multidimensional_input(self):
        values = np.array([[1.0, -9.0], [2.0, 0.0]])
        idx = topk_indices(values, 1)
        assert idx.tolist() == [1]

    def test_dtype_is_int64(self):
        assert topk_indices(np.arange(10.0), 3).dtype == np.int64

    def test_unsorted_still_correct_set(self):
        values = np.array([5.0, 1.0, 4.0, 3.0, 2.0])
        idx = topk_indices(values, 2, sort=False)
        assert set(idx.tolist()) == {0, 2}


class TestTopkValues:
    def test_returns_indices_and_values(self):
        values = np.array([1.0, -7.0, 3.0])
        idx, vals = topk_values(values, 2)
        np.testing.assert_array_equal(vals, values[idx])
        assert set(idx.tolist()) == {1, 2}


class TestTopkThreshold:
    def test_threshold_is_kth_largest_magnitude(self):
        values = np.array([1.0, -4.0, 3.0, -2.0])
        assert topk_threshold(values, 2) == 3.0

    def test_threshold_inf_for_k_zero(self):
        assert topk_threshold(np.arange(4.0), 0) == float("inf")

    def test_threshold_zero_for_k_ge_n(self):
        assert topk_threshold(np.arange(4.0), 10) == 0.0

    def test_threshold_selects_at_least_k(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(100)
        k = 17
        threshold = topk_threshold(values, k)
        assert threshold_indices(values, threshold).size >= k


class TestThresholdIndices:
    def test_inclusive_comparison(self):
        values = np.array([1.0, 2.0, 3.0])
        idx = threshold_indices(values, 2.0)
        assert set(idx.tolist()) == {1, 2}

    def test_uses_magnitude(self):
        values = np.array([-5.0, 0.1, 4.0])
        idx = threshold_indices(values, 3.0)
        assert set(idx.tolist()) == {0, 2}

    def test_infinite_threshold_selects_nothing(self):
        assert threshold_indices(np.arange(5.0), float("inf")).size == 0

    def test_minus_infinite_threshold_selects_all(self):
        assert threshold_indices(np.arange(5.0), float("-inf")).size == 5


class TestSelectMagnitude:
    def test_gathers_values(self):
        values = np.array([10.0, 20.0, 30.0])
        np.testing.assert_array_equal(select_magnitude(values, np.array([2, 0])), [30.0, 10.0])


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


@given(values=finite_vectors, k=st.integers(0, 250))
@settings(max_examples=60, deadline=None)
def test_topk_count_property(values, k):
    """topk returns exactly min(k, n) indices, all unique and in range."""
    idx = topk_indices(values, k)
    expected = min(max(k, 0), values.size)
    assert idx.size == expected
    assert np.unique(idx).size == idx.size
    if idx.size:
        assert idx.min() >= 0 and idx.max() < values.size


@given(values=finite_vectors, k=st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_topk_dominates_unselected(values, k):
    """Every selected magnitude >= every unselected magnitude."""
    idx = topk_indices(values, k)
    mask = np.zeros(values.size, dtype=bool)
    mask[idx] = True
    if mask.all():
        return
    selected_min = np.abs(values[mask]).min()
    unselected_max = np.abs(values[~mask]).max()
    assert selected_min >= unselected_max


@given(values=finite_vectors, k=st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_threshold_consistency_with_topk(values, k):
    """Selecting by the Top-k threshold returns a superset of size >= min(k, n)."""
    k = min(k, values.size)
    threshold = topk_threshold(values, k)
    idx = threshold_indices(values, threshold)
    assert idx.size >= k
