"""End-to-end integration tests crossing all subsystems.

These are the "does the reproduced system behave like the paper says"
checks, run at the smallest scale where the qualitative claims are visible.
"""

import pytest

from repro.sparsifiers import build_sparsifier
from repro.sparsifiers.base import GradientLayout
from repro.training.tasks import ImageClassificationTask, LanguageModelingTask
from repro.training.trainer import DistributedTrainer, TrainingConfig


def train(task, sparsifier_name, density, n_workers, epochs, lr, seed=0, iterations=None):
    sparsifier = build_sparsifier(sparsifier_name, density)
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=epochs,
        lr=lr,
        seed=seed,
        max_iterations_per_epoch=iterations,
    )
    return DistributedTrainer(task, sparsifier, config).train()


@pytest.fixture(scope="module")
def lm_task():
    return LanguageModelingTask(
        vocab_size=60, train_tokens=4096, test_tokens=1024, seq_len=8,
        embed_dim=16, hidden_dim=24, seed=0,
    )


@pytest.fixture(scope="module")
def image_task():
    return ImageClassificationTask(
        n_train=128, n_test=64, num_classes=4, image_size=8, model_scale="tiny", seed=0,
    )


class TestLanguageModelConvergence:
    def test_deft_reduces_perplexity(self, lm_task):
        """DEFT-sparsified distributed training must actually learn: test
        perplexity after two epochs is well below the untrained level."""
        untrained = lm_task.evaluate(lm_task.build_model())["perplexity"]
        result = train(lm_task, "deft", 0.05, n_workers=4, epochs=2, lr=0.5)
        trained = result.logger.series("perplexity").last()
        assert trained < 0.8 * untrained

    def test_deft_tracks_dense_training(self, lm_task):
        """DEFT's convergence must stay in the same ballpark as non-sparsified
        training (the paper's central accuracy claim), while transmitting a
        tiny fraction of the gradients."""
        dense = train(lm_task, "dense", 1.0, n_workers=4, epochs=2, lr=0.5)
        deft = train(lm_task, "deft", 0.05, n_workers=4, epochs=2, lr=0.5)
        dense_ppl = dense.logger.series("perplexity").last()
        deft_ppl = deft.logger.series("perplexity").last()
        assert deft_ppl < 1.5 * dense_ppl
        assert deft.mean_density() < 0.1

    def test_deft_beats_random_selection(self, lm_task):
        """Magnitude-aware selection must beat random-k at equal density --
        otherwise the norm-based k assignment would be pointless."""
        deft = train(lm_task, "deft", 0.02, n_workers=4, epochs=2, lr=0.5, seed=1)
        random_k = train(lm_task, "randomk", 0.02, n_workers=4, epochs=2, lr=0.5, seed=1)
        assert (
            deft.logger.series("perplexity").last()
            <= random_k.logger.series("perplexity").last() * 1.05
        )


class TestImageClassificationConvergence:
    def test_deft_learns_above_chance(self, image_task):
        result = train(image_task, "deft", 0.05, n_workers=2, epochs=3, lr=0.1)
        accuracy = result.logger.series("accuracy").last()
        assert accuracy > 0.3  # 4 classes -> chance is 0.25

    def test_sparsifiers_agree_on_convergence_point(self, image_task):
        """DEFT and CLT-k reach comparable accuracy at the same density."""
        deft = train(image_task, "deft", 0.05, n_workers=2, epochs=2, lr=0.1)
        cltk = train(image_task, "cltk", 0.05, n_workers=2, epochs=2, lr=0.1)
        assert abs(deft.logger.series("accuracy").last() - cltk.logger.series("accuracy").last()) < 0.3


class TestScalabilityClaims:
    def test_deft_density_invariant_to_worker_count(self, lm_task):
        """The paper's key sparsification claim: DEFT's measured density does
        not grow with the number of workers, while Top-k's does."""
        deft_densities = []
        topk_densities = []
        for n_workers in (2, 8):
            deft = train(lm_task, "deft", 0.05, n_workers=n_workers, epochs=1, lr=0.5, iterations=4)
            topk = train(lm_task, "topk", 0.05, n_workers=n_workers, epochs=1, lr=0.5, iterations=4)
            deft_densities.append(deft.mean_density())
            topk_densities.append(topk.mean_density())
        assert abs(deft_densities[1] - deft_densities[0]) < 0.01
        assert topk_densities[1] > topk_densities[0] * 1.2

    def test_deft_selection_cost_falls_with_workers(self, lm_task):
        """Eq. 5: the slowest worker's analytic selection cost shrinks as the
        cluster grows."""
        costs = []
        for n_workers in (1, 4, 8):
            result = train(lm_task, "deft", 0.01, n_workers=n_workers, epochs=1, lr=0.5, iterations=3)
            costs.append(result.logger.series("selection_cost_analytic").mean())
        assert costs[1] < costs[0]
        assert costs[2] < costs[1]

    def test_deft_analytic_cost_below_topk_at_scale(self, lm_task):
        deft = train(lm_task, "deft", 0.01, n_workers=8, epochs=1, lr=0.5, iterations=3)
        topk = train(lm_task, "topk", 0.01, n_workers=8, epochs=1, lr=0.5, iterations=3)
        assert (
            deft.logger.series("selection_cost_analytic").mean()
            < 0.6 * topk.logger.series("selection_cost_analytic").mean()
        )


class TestModelLayoutRoundtrip:
    def test_layout_matches_flattened_gradients(self, lm_task):
        """GradientLayout, flatten_gradients and the error-feedback memory all
        agree on n_g for a real model."""
        from repro.training.optimizers import flatten_gradients
        from repro.data.dataloader import DataLoader

        model = lm_task.build_model()
        layout = GradientLayout.from_model(model)
        batch = next(iter(DataLoader(lm_task.train_dataset(), batch_size=4)))
        loss = lm_task.compute_loss(model, batch)
        loss.backward()
        flat = flatten_gradients(model)
        assert flat.size == layout.total_size
        norms = layout.layer_norms(flat)
        assert (norms > 0).sum() >= layout.n_layers - 1
