"""Tests for the append-only JSONL run ledger."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import RunSpec, Session
from repro.observability import RunLedger, default_ledger_path
from repro.observability.ledger import LEDGER_ENV_VAR
from repro.sweep import run_sweep, spec_key


def tiny_spec(**overrides) -> RunSpec:
    base = {
        "workload": "lm",
        "cluster": {"n_workers": 2},
        "optimizer": {"epochs": 1, "max_iterations_per_epoch": 2},
        "compression": {"sparsifier": "deft", "density": 0.05},
    }
    data = dict(base)
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(data.get(key), dict):
            merged = dict(data[key])
            merged.update(value)
            data[key] = merged
        else:
            data[key] = value
    return RunSpec.from_dict(data)


# ---------------------------------------------------------------------- #
class TestDefaultPath:
    def test_env_var_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "custom.jsonl"))
        assert default_ledger_path() == tmp_path / "custom.jsonl"

    def test_default_under_cache_dir(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
        path = default_ledger_path()
        assert path.name == "ledger.jsonl"
        assert ".cache" in path.parts


class TestAppendAndRead:
    def test_append_stamps_defaults(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        stamped = ledger.append({"spec_key": "abc", "metrics": {"loss": 1.0}})
        assert stamped["schema"] == 1
        assert stamped["kind"] == "run"
        assert stamped["ts"] > 0
        entries = ledger.entries()
        assert len(entries) == 1
        assert entries[0]["spec_key"] == "abc"
        assert entries[0]["metrics"] == {"loss": 1.0}

    def test_append_requires_spec_key(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        with pytest.raises(ValueError):
            ledger.append({"metrics": {"loss": 1.0}})

    def test_entries_preserve_append_order(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        for i in range(5):
            ledger.append({"spec_key": "k", "i": i})
        assert [e["i"] for e in ledger.entries()] == list(range(5))
        assert len(ledger) == 5

    def test_missing_file_is_empty_history(self, tmp_path):
        ledger = RunLedger(tmp_path / "nope.jsonl")
        assert ledger.entries() == []
        assert ledger.latest("any") is None

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(path)
        ledger.append({"spec_key": "good1"})
        with open(path, "a") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
            handle.write('{"no_spec_key": 1}\n')
            handle.write("\n")
        ledger.append({"spec_key": "good2"})
        entries = ledger.entries()
        assert [e["spec_key"] for e in entries] == ["good1", "good2"]
        assert ledger.skipped == 3  # blank lines don't count

    def test_entries_for_prefix_and_latest(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append({"spec_key": "aaa111", "n": 0})
        ledger.append({"spec_key": "bbb222", "n": 1})
        ledger.append({"spec_key": "aaa111", "n": 2})
        assert [e["n"] for e in ledger.entries_for("aaa")] == [0, 2]
        assert ledger.latest("aaa")["n"] == 2
        grouped = ledger.by_spec_key()
        assert list(grouped) == ["aaa111", "bbb222"]
        assert len(grouped["aaa111"]) == 2


# ---------------------------------------------------------------------- #
def _append_burst(path, worker, count):
    ledger = RunLedger(path)
    for i in range(count):
        ledger.append({"spec_key": f"w{worker}", "i": i, "pad": "x" * 200})
    return worker


class TestConcurrentAppends:
    def test_process_pool_appends_yield_one_line_each(self, tmp_path):
        """Parallel appenders produce exactly one well-formed line per entry."""
        path = tmp_path / "concurrent.jsonl"
        n_workers, per_worker = 4, 25
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_append_burst, path, worker, per_worker)
                for worker in range(n_workers)
            ]
            for future in futures:
                future.result()
        lines = path.read_text().splitlines()
        assert len(lines) == n_workers * per_worker
        parsed = [json.loads(line) for line in lines]  # every line well-formed
        ledger = RunLedger(path)
        assert len(ledger.entries()) == n_workers * per_worker
        assert ledger.skipped == 0
        # Each worker's entries survive complete and in its own order.
        for worker in range(n_workers):
            own = [e["i"] for e in parsed if e["spec_key"] == f"w{worker}"]
            assert own == list(range(per_worker))


# ---------------------------------------------------------------------- #
class TestSessionWiring:
    def test_session_records_runs(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        session = Session(ledger=ledger)
        spec = tiny_spec()
        result = session.run(spec)
        entries = ledger.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "run"
        assert entry["source"] == "run"
        assert entry["spec_key"] == spec_key(spec)
        assert entry["metrics"]["loss"] == pytest.approx(
            result.final_metrics["loss"]
        )
        assert entry["metrics"]["estimated_wallclock"] == pytest.approx(
            result.estimated_wallclock
        )
        assert entry["traffic"]["total_sent_elements"] > 0
        assert entry["host_seconds"] > 0
        assert entry["run"]["workload"] == "lm"
        assert entry["error"] is None

    def test_session_without_ledger_writes_nothing(self, tmp_path):
        session = Session()
        session.run(tiny_spec())
        assert session.ledger is None

    def test_ledger_entry_roundtrips_json(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        Session(ledger=ledger).run(tiny_spec())
        line = (tmp_path / "l.jsonl").read_text().strip()
        assert json.loads(line)["spec_key"]


class TestSweepWiring:
    def test_sweep_ledgers_every_cell(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in (0, 1, 2)]
        ledger = RunLedger(tmp_path / "l.jsonl")
        report = run_sweep(specs, jobs=1, ledger=ledger)
        entries = ledger.entries()
        assert len(entries) == len(specs)
        assert {e["source"] for e in entries} == {"run"}
        assert sorted(e["spec_key"] for e in entries) == sorted(
            spec_key(s) for s in specs
        )
        assert len(report) == len(specs)

    def test_parallel_sweep_one_line_per_cell(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in range(4)]
        ledger = RunLedger(tmp_path / "l.jsonl")
        run_sweep(specs, jobs=2, ledger=ledger)
        lines = (tmp_path / "l.jsonl").read_text().splitlines()
        assert len(lines) == len(specs)
        for line in lines:
            json.loads(line)
        assert len(ledger.entries()) == len(specs)
        assert ledger.skipped == 0

    def test_cache_hits_tagged_by_source(self, tmp_path):
        from repro.sweep import ResultCache

        specs = [tiny_spec(seed=seed) for seed in (0, 1)]
        cache = ResultCache(root=tmp_path / "cache")
        ledger = RunLedger(tmp_path / "l.jsonl")
        run_sweep(specs, jobs=1, cache=cache, ledger=ledger)
        run_sweep(specs, jobs=1, cache=cache, ledger=ledger)
        sources = [e["source"] for e in ledger.entries()]
        assert sources.count("run") == 2
        assert sources.count("cache") == 2

    def test_failed_cells_ledgered_with_error(self, tmp_path):
        good = tiny_spec(seed=0)
        # Density validation fires at sparsifier build time, inside the cell.
        bad = tiny_spec(compression={"sparsifier": "deft", "density": 7.0})
        ledger = RunLedger(tmp_path / "l.jsonl")
        report = run_sweep([good, bad], jobs=1, ledger=ledger)
        assert report.counts()["error"] == 1
        entries = ledger.entries()
        assert len(entries) == 2
        errored = [e for e in entries if e["source"] == "error"]
        assert len(errored) == 1
        assert errored[0]["error"]
