"""Tests for repro.tensor.functional."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F
from tests.test_tensor_autograd import check_gradient

RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((4, 6)), dtype=np.float64)
        out = F.softmax(x).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-7)

    def test_shift_invariance(self):
        x = RNG.standard_normal((3, 5))
        a = F.softmax(Tensor(x, dtype=np.float64)).numpy()
        b = F.softmax(Tensor(x + 100.0, dtype=np.float64)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-7)

    def test_large_values_do_not_overflow(self):
        x = Tensor(np.array([[1e4, 0.0, -1e4]]), dtype=np.float64)
        out = F.softmax(x).numpy()
        assert np.isfinite(out).all()

    def test_gradient(self):
        x = RNG.standard_normal((3, 4))
        check_gradient(lambda t: (F.softmax(t[0]) ** 2).sum(), [x])


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((3, 5)), dtype=np.float64)
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), atol=1e-6
        )

    def test_gradient(self):
        x = RNG.standard_normal((2, 4))
        check_gradient(lambda t: (F.log_softmax(t[0]) * 0.3).sum(), [x])


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 1])
        loss = F.cross_entropy(Tensor(logits, dtype=np.float64), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits, dtype=np.float64), np.array([1, 2])).item()
        assert loss < 1e-6

    def test_reductions(self):
        logits = Tensor(RNG.standard_normal((4, 3)), dtype=np.float64)
        targets = np.array([0, 1, 2, 1])
        total = F.cross_entropy(logits, targets, reduction="sum").item()
        mean = F.cross_entropy(logits, targets, reduction="mean").item()
        none = F.cross_entropy(logits, targets, reduction="none").numpy()
        assert total == pytest.approx(mean * 4, rel=1e-6)
        assert none.shape == (4,)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, targets, reduction="bogus")

    def test_gradient(self):
        logits = RNG.standard_normal((5, 4))
        targets = np.array([0, 3, 1, 2, 2])
        check_gradient(lambda t: F.cross_entropy(t[0], targets), [logits])


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = RNG.standard_normal(10)
        targets = (RNG.random(10) > 0.5).astype(np.float64)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits, dtype=np.float64), targets).item()
        p = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_stable_for_extreme_logits(self):
        logits = Tensor(np.array([60.0, -60.0]), dtype=np.float64)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0])).item()
        assert np.isfinite(loss)
        assert loss < 1e-6

    def test_gradient(self):
        logits = RNG.standard_normal(8)
        targets = (RNG.random(8) > 0.5).astype(np.float64)
        check_gradient(lambda t: F.binary_cross_entropy_with_logits(t[0], targets), [logits])


class TestMSELoss:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]), dtype=np.float64)
        loss = F.mse_loss(pred, np.array([0.0, 0.0])).item()
        assert loss == pytest.approx(2.5)

    def test_gradient(self):
        pred = RNG.standard_normal(6)
        target = RNG.standard_normal(6)
        check_gradient(lambda t: F.mse_loss(t[0], target), [pred])


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(RNG.standard_normal(100), dtype=np.float64)
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_p_zero_is_identity(self):
        x = Tensor(RNG.standard_normal(100), dtype=np.float64)
        out = F.dropout(x, 0.0, training=True)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_keeps_expected_fraction(self):
        x = Tensor(np.ones(20000), dtype=np.float64)
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0)).numpy()
        kept = (out != 0).mean()
        assert kept == pytest.approx(0.7, abs=0.02)

    def test_rescales_kept_values(self):
        x = Tensor(np.ones(10000), dtype=np.float64)
        out = F.dropout(x, 0.25, training=True, rng=np.random.default_rng(1)).numpy()
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 1.0 / 0.75)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0)


class TestEmbeddingAndOneHot:
    def test_embedding_gathers_rows(self):
        weight = Tensor(np.arange(12, dtype=np.float64).reshape(4, 3), dtype=np.float64)
        out = F.embedding(weight, np.array([2, 0]))
        np.testing.assert_array_equal(out.numpy(), weight.numpy()[[2, 0]])

    def test_embedding_gradient_scatters(self):
        weight = RNG.standard_normal((6, 4))
        idx = np.array([1, 1, 3])
        check_gradient(lambda t: (F.embedding(t[0], idx) ** 2).sum(), [weight])

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])


class TestLinear:
    def test_shapes_and_gradient(self):
        x = RNG.standard_normal((3, 5))
        w = RNG.standard_normal((2, 5))
        b = RNG.standard_normal(2)
        check_gradient(lambda t: (F.linear(t[0], t[1], t[2]) ** 2).sum(), [x, w, b])

    def test_no_bias(self):
        x = Tensor(RNG.standard_normal((3, 5)), dtype=np.float64)
        w = Tensor(RNG.standard_normal((2, 5)), dtype=np.float64)
        out = F.linear(x, w)
        np.testing.assert_allclose(out.numpy(), x.numpy() @ w.numpy().T, atol=1e-7)
