"""Tests for the pluggable execution models and straggler simulation."""

import numpy as np
import pytest

from repro.execution import (
    STRAGGLER_PROFILES,
    AsyncBSPExecution,
    ElasticAveragingExecution,
    LocalSGDExecution,
    SynchronousExecution,
    VirtualClock,
    WorkerSpeedModel,
    available_execution_models,
    build_execution_model,
    build_speed_factors,
    flatten_parameters,
    load_flat_parameters,
)
from repro.sparsifiers import build_sparsifier
from repro.training.trainer import DistributedTrainer, TrainingConfig


def run_with(task, execution, sparsifier="deft", density=0.05, n_workers=4, iterations=6,
             epochs=1, seed=0, lr=0.2, **config_kwargs):
    config = TrainingConfig(
        n_workers=n_workers,
        batch_size=8,
        epochs=epochs,
        lr=lr,
        seed=seed,
        max_iterations_per_epoch=iterations,
        evaluate_each_epoch=False,
        execution=execution,
        **config_kwargs,
    )
    trainer = DistributedTrainer(task, build_sparsifier(sparsifier, density), config)
    return trainer, trainer.train()


class TestRegistry:
    def test_available_names(self):
        assert available_execution_models() == [
            "async_bsp", "elastic", "gossip", "local_sgd", "synchronous",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_execution_model("nonexistent")

    def test_builders_produce_right_types(self):
        assert isinstance(build_execution_model("synchronous"), SynchronousExecution)
        assert isinstance(build_execution_model("local_sgd", local_steps=2), LocalSGDExecution)
        assert isinstance(build_execution_model("async_bsp", max_staleness=3), AsyncBSPExecution)
        assert isinstance(build_execution_model("elastic"), ElasticAveragingExecution)

    def test_uniform_knob_set_tolerated(self):
        """The runner passes every knob to every model; extras are ignored."""
        model = build_execution_model("synchronous", local_steps=2, max_staleness=3)
        assert isinstance(model, SynchronousExecution)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            build_execution_model("local_sgd", local_steps=0)
        with pytest.raises(ValueError):
            build_execution_model("async_bsp", max_staleness=-1)
        with pytest.raises(ValueError):
            build_execution_model("elastic", elastic_alpha=1.5)


class TestStragglerProfiles:
    def test_uniform_profile_is_all_ones(self):
        assert np.all(build_speed_factors("uniform", 8) == 1.0)

    def test_straggler_profile_slows_last_rank(self):
        factors = build_speed_factors("straggler", 8, straggler_factor=5.0)
        assert factors[-1] == 5.0
        assert np.all(factors[:-1] == 1.0)

    def test_lognormal_profile_deterministic_per_seed(self):
        a = build_speed_factors("lognormal", 8, seed=3)
        b = build_speed_factors("lognormal", 8, seed=3)
        c = build_speed_factors("lognormal", 8, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, c)
        assert np.all(a > 0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            build_speed_factors("nonexistent", 4)

    def test_speed_model_batch_seconds(self):
        model = WorkerSpeedModel(4, base_compute_seconds=0.01, profile="straggler")
        assert model.batch_seconds(0) == pytest.approx(0.01)
        assert model.batch_seconds(3) == pytest.approx(0.04)
        assert model.slowest_batch_seconds() == pytest.approx(0.04)


class TestVirtualClock:
    def test_lockstep_advance(self):
        clock = VirtualClock(3)
        clock.advance_all(1.0)
        clock.advance_all(0.5)
        assert clock.now == pytest.approx(1.5)
        assert np.all(clock.worker_time == 1.5)

    def test_worker_advance_and_synchronize(self):
        clock = VirtualClock(2)
        clock.advance_worker(0, 1.0)
        clock.advance_worker(1, 3.0)
        assert clock.now == pytest.approx(3.0)
        clock.synchronize()
        assert np.all(clock.worker_time == 3.0)

    def test_advance_to_is_monotone(self):
        clock = VirtualClock(2)
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock.now == pytest.approx(2.0)

    def test_idle_seconds_never_negative_for_workers_ahead(self):
        """Regression: a worker that ran ahead of the last global event
        (async/elastic event loops) must report zero idle time, not a
        negative one -- idle is measured against the `now` property."""
        clock = VirtualClock(3)
        clock.advance_to(1.0)
        clock.advance_worker(0, 2.5)  # ahead of the last global event
        clock.advance_worker(1, 0.5)
        idle = clock.idle_seconds()
        assert all(i >= 0.0 for i in idle)
        assert idle[0] == pytest.approx(0.0)
        assert idle[1] == pytest.approx(2.0)
        assert idle[2] == pytest.approx(2.5)


class TestParameterFlattening:
    def test_roundtrip(self, smoke_lm_task):
        import numpy as np
        from repro.utils.seeding import new_rng

        model = smoke_lm_task.build_model(rng=new_rng(0))
        flat = flatten_parameters(model)
        load_flat_parameters(model, flat * 2.0)
        np.testing.assert_allclose(flatten_parameters(model), flat * 2.0, rtol=1e-6)

    def test_size_mismatch_rejected(self, smoke_lm_task):
        from repro.utils.seeding import new_rng

        model = smoke_lm_task.build_model(rng=new_rng(0))
        with pytest.raises(ValueError):
            load_flat_parameters(model, np.zeros(3))


class TestSynchronousExtraction:
    def test_explicit_synchronous_matches_default(self, smoke_lm_task):
        """The default config and an explicit --execution synchronous must
        produce the same trajectory (the extraction is pure code motion)."""
        _, default = run_with(smoke_lm_task, "synchronous", seed=5)
        config = TrainingConfig(
            n_workers=4, batch_size=8, epochs=1, lr=0.2, seed=5,
            max_iterations_per_epoch=6, evaluate_each_epoch=False,
        )
        trainer = DistributedTrainer(smoke_lm_task, build_sparsifier("deft", 0.05), config)
        baseline = trainer.train()
        np.testing.assert_array_equal(
            default.logger.series("loss").values, baseline.logger.series("loss").values
        )

    def test_metadata_records_execution(self, smoke_lm_task):
        trainer, result = run_with(smoke_lm_task, "synchronous")
        assert result.logger.metadata["execution"] == "synchronous"
        assert result.logger.metadata["straggler_profile"] == "uniform"

    def test_virtual_time_logged_and_monotone(self, smoke_lm_task):
        _, result = run_with(smoke_lm_task, "synchronous")
        series = result.logger.series("virtual_time").values
        assert len(series) == result.iterations_run
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert result.estimated_wallclock == pytest.approx(series[-1])


class TestLocalSGD:
    def test_runs_and_reduces_value_collectives(self, smoke_lm_task):
        trainer_sync, _ = run_with(smoke_lm_task, "synchronous", iterations=8)
        trainer_local, result = run_with(
            smoke_lm_task, "local_sgd", iterations=8, local_steps=4
        )
        assert result.iterations_run == 8
        sync_calls = trainer_sync.backend.meter.call_count(tag="values")
        local_calls = trainer_local.backend.meter.call_count(tag="values")
        # 8 lock-step exchanges vs one sync every 4 steps (incl. epoch end).
        assert sync_calls == 8
        assert local_calls == 2

    def test_loss_decreases(self, smoke_lm_task):
        _, result = run_with(
            smoke_lm_task, "local_sgd", sparsifier="dense", density=1.0,
            iterations=20, local_steps=2, lr=0.5,
        )
        losses = result.logger.series("loss").values
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
        assert np.isfinite(losses).all()

    def test_dense_local_sgd_with_h1_matches_periodic_averaging(self, smoke_lm_task):
        """With H=1 and density 1 every sync applies x_ref - mean(x_i): the
        model equals the average of the one-step local models each round."""
        trainer, result = run_with(
            smoke_lm_task, "local_sgd", sparsifier="dense", density=1.0,
            iterations=3, local_steps=1,
        )
        assert result.mean_density() == pytest.approx(1.0)
        for p in trainer.model.parameters():
            assert np.isfinite(p.data).all()

    def test_wallclock_below_synchronous_with_same_compute(self, smoke_lm_task):
        """Same modelled compute, but the collectives fire H times less
        often, so the virtual makespan can only shrink."""
        _, sync = run_with(smoke_lm_task, "synchronous", iterations=8)
        _, local = run_with(smoke_lm_task, "local_sgd", iterations=8, local_steps=4)
        assert local.estimated_wallclock < sync.estimated_wallclock


class TestAsyncBSP:
    def test_completes_and_respects_budget(self, smoke_lm_task):
        trainer, result = run_with(
            smoke_lm_task, "async_bsp", iterations=6, straggler_profile="lognormal"
        )
        arrived = result.logger.series("n_arrived").values
        assert sum(arrived) == 6 * 4  # per-epoch batch budget = iterations * workers
        assert np.isfinite(result.logger.series("loss").values).all()

    def test_staleness_bounded(self, smoke_lm_task):
        max_staleness = 2
        _, result = run_with(
            smoke_lm_task, "async_bsp", iterations=8,
            straggler_profile="straggler", max_staleness=max_staleness,
        )
        staleness = result.logger.series("staleness").values
        assert max(staleness) <= max_staleness

    def test_zero_staleness_degenerates_to_lockstep(self, smoke_lm_task):
        trainer, result = run_with(
            smoke_lm_task, "async_bsp", iterations=4,
            straggler_profile="lognormal", max_staleness=0,
        )
        # Every round all workers are forced to arrive together.
        arrived = result.logger.series("n_arrived").values
        assert all(a == 4 for a in arrived)

    def test_faster_than_synchronous_under_stragglers(self, smoke_lm_task):
        """The acceptance criterion: same straggler profile, same per-epoch
        batch budget, lower estimated wall-clock."""
        _, sync = run_with(
            smoke_lm_task, "synchronous", iterations=8, straggler_profile="lognormal"
        )
        _, async_ = run_with(
            smoke_lm_task, "async_bsp", iterations=8, straggler_profile="lognormal"
        )
        assert async_.estimated_wallclock < sync.estimated_wallclock

    def test_runner_defaults_to_staleness_weighted_mean(self, smoke_lm_task):
        from repro.experiments.runner import run_training

        result = run_training(
            "lm", "deft", density=0.05, n_workers=2, epochs=1,
            max_iterations_per_epoch=2, task=smoke_lm_task, execution="async_bsp",
        )
        assert result.logger.metadata["aggregator"] == "staleness_weighted_mean"

    def test_explicit_mean_is_honoured(self, smoke_lm_task):
        from repro.experiments.runner import run_training

        result = run_training(
            "lm", "deft", density=0.05, n_workers=2, epochs=1,
            max_iterations_per_epoch=2, task=smoke_lm_task, execution="async_bsp",
            aggregator="mean",
        )
        assert result.logger.metadata["aggregator"] == "mean"

    def test_per_rank_gradient_attack_bites(self, smoke_lm_task):
        """sign_flip goes through the singular per-rank hook, so it must
        change the async trajectory relative to the benign run."""
        _, benign = run_with(smoke_lm_task, "async_bsp", iterations=5, seed=2)
        _, attacked = run_with(
            smoke_lm_task, "async_bsp", iterations=5, seed=2,
            attack="sign_flip", n_byzantine=1,
        )
        assert not np.allclose(
            benign.logger.series("loss").values, attacked.logger.series("loss").values
        )

    def test_colluding_attack_rejected(self, smoke_lm_task):
        """ALIE only acts through the plural synchronized-view hook, which
        an asynchronous schedule can never provide -- refuse, don't no-op."""
        with pytest.raises(ValueError, match="synchronized group view"):
            run_with(
                smoke_lm_task, "async_bsp", iterations=2,
                attack="alie", n_byzantine=1,
            )

    def test_robust_norms_engaged_without_collective_coordinate(self, smoke_lm_task):
        """--robust-norms must keep protecting DEFT's k assignment even
        though the async schedule has no collective coordinate phase."""
        from repro.sparsifiers import build_sparsifier as build

        config = TrainingConfig(
            n_workers=4, batch_size=8, epochs=1, lr=0.2, seed=0,
            max_iterations_per_epoch=3, evaluate_each_epoch=False,
            execution="async_bsp", straggler_profile="lognormal",
        )
        sparsifier = build("deft", 0.05, robust_norms=True)
        trainer = DistributedTrainer(smoke_lm_task, sparsifier, config)
        trainer.train()
        assert sparsifier._shared_norms is not None
        assert sparsifier._shared_norms_iteration is not None

    def test_server_traffic_metered(self, smoke_lm_task):
        trainer, _ = run_with(smoke_lm_task, "async_bsp", iterations=3)
        tags = trainer.backend.meter.by_tag()
        assert "ps-push" in tags
        assert trainer.backend.meter.call_count(op="pull", tag="ps-pull") > 0

    def test_reproducible_given_seed(self, smoke_lm_task):
        _, a = run_with(smoke_lm_task, "async_bsp", iterations=5, seed=9,
                        straggler_profile="lognormal")
        _, b = run_with(smoke_lm_task, "async_bsp", iterations=5, seed=9,
                        straggler_profile="lognormal")
        np.testing.assert_array_equal(
            a.logger.series("loss").values, b.logger.series("loss").values
        )


class TestElastic:
    def test_runs_and_center_is_finite(self, smoke_lm_task):
        trainer, result = run_with(
            smoke_lm_task, "elastic", iterations=8, local_steps=2
        )
        assert result.iterations_run == 8
        assert np.isfinite(result.logger.series("loss").values).all()
        for p in trainer.model.parameters():
            assert np.isfinite(p.data).all()

    def test_elastic_spread_logged_on_sync_steps(self, smoke_lm_task):
        _, result = run_with(smoke_lm_task, "elastic", iterations=4, local_steps=2)
        spread = result.logger.series("elastic_spread").values
        # Sync fires on steps 2 and 4; local steps log zero spread.
        assert spread[0] == 0.0
        assert spread[1] > 0.0

    def test_loss_decreases(self, smoke_lm_task):
        _, result = run_with(
            smoke_lm_task, "elastic", sparsifier="dense", density=1.0,
            iterations=20, local_steps=2, lr=0.5,
        )
        losses = result.logger.series("loss").values
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_server_traffic_metered(self, smoke_lm_task):
        trainer, _ = run_with(smoke_lm_task, "elastic", iterations=4, local_steps=2)
        tags = trainer.backend.meter.by_tag()
        assert "elastic-push" in tags
        assert "elastic-pull" in tags

    def test_momentum_rejected(self, smoke_lm_task):
        """The elastic exchange bypasses the optimizer: momentum and weight
        decay would be silently dropped, so the schedule refuses them."""
        with pytest.raises(ValueError, match="momentum"):
            run_with(smoke_lm_task, "elastic", iterations=2, momentum=0.9)

    def test_gradient_attacks_rejected_data_poisoning_allowed(self, smoke_lm_task):
        """Elastic exchanges parameters, never gradient accumulators:
        accumulator attacks would be silently inert, so they are refused;
        data poisoning hooks before the local step and stays supported."""
        with pytest.raises(ValueError, match="accumulators"):
            run_with(smoke_lm_task, "elastic", iterations=2,
                     attack="sign_flip", n_byzantine=1)
        _, benign = run_with(smoke_lm_task, "elastic", iterations=4, seed=2)
        _, poisoned = run_with(smoke_lm_task, "elastic", iterations=4, seed=2,
                               attack="label_flip", n_byzantine=1)
        assert not np.allclose(
            benign.logger.series("loss").values, poisoned.logger.series("loss").values
        )


class TestConfigValidation:
    def test_negative_byzantine_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(n_workers=4, n_byzantine=-1)

    def test_all_byzantine_rejected(self):
        with pytest.raises(ValueError, match="benign worker"):
            TrainingConfig(n_workers=4, n_byzantine=4)

    def test_more_byzantine_than_workers_rejected(self):
        with pytest.raises(ValueError, match="benign worker"):
            TrainingConfig(n_workers=2, n_byzantine=5)

    def test_valid_byzantine_accepted(self):
        config = TrainingConfig(n_workers=4, n_byzantine=3)
        assert config.n_byzantine == 3

    def test_bad_local_steps_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(local_steps=0)

    def test_bad_staleness_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(max_staleness=-1)

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(straggler_profile="nonexistent")

    def test_profiles_registry_is_stable(self):
        assert STRAGGLER_PROFILES == ("uniform", "lognormal", "straggler")
