"""Tests for the baseline sparsifiers: Top-k, CLT-k, hard-threshold, SIDCo,
Random-k and Dense."""

import numpy as np
import pytest

from repro.comm import SimulatedBackend
from repro.sparsifiers import (
    CLTKSparsifier,
    DenseSparsifier,
    HardThresholdSparsifier,
    RandomKSparsifier,
    SIDCoSparsifier,
    TopKSparsifier,
)
from repro.utils.topk_ops import topk_indices


class TestTopK:
    def test_selects_exactly_k(self, small_layout, small_acc):
        sparsifier = TopKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        result = sparsifier.select(0, 0, small_acc)
        assert result.k_selected == sparsifier.global_k

    def test_selects_largest_magnitudes(self, small_layout, small_acc):
        sparsifier = TopKSparsifier(0.05)
        sparsifier.setup(small_layout, 4)
        result = sparsifier.select(0, 0, small_acc)
        expected = set(topk_indices(small_acc, sparsifier.global_k).tolist())
        assert set(result.indices.tolist()) == expected

    def test_different_workers_select_independently(self, small_layout, rng):
        sparsifier = TopKSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        acc0 = rng.standard_normal(small_layout.total_size)
        acc1 = rng.standard_normal(small_layout.total_size)
        idx0 = set(sparsifier.select(0, 0, acc0).indices.tolist())
        idx1 = set(sparsifier.select(0, 1, acc1).indices.tolist())
        assert idx0 != idx1  # build-up: selections differ across workers

    def test_analytic_cost_is_n_log_k(self, small_layout, small_acc):
        sparsifier = TopKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        result = sparsifier.select(0, 0, small_acc)
        expected = small_layout.total_size * np.log2(max(sparsifier.global_k, 2))
        assert result.analytic_cost == pytest.approx(expected)


class TestCLTK:
    def test_leader_cycles_with_iteration(self, small_layout):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        assert [sparsifier.leader_of(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_all_workers_get_leader_indices(self, small_layout, rng):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 3)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(3)]
        sparsifier.coordinate(1, accs)
        leader = sparsifier.leader_of(1)
        expected = set(topk_indices(accs[leader], sparsifier.global_k).tolist())
        for rank in range(3):
            result = sparsifier.select(1, rank, accs[rank])
            assert set(result.indices.tolist()) == expected

    def test_no_buildup_across_workers(self, small_layout, rng):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(4)]
        sparsifier.coordinate(0, accs)
        union = set()
        for rank in range(4):
            union |= set(sparsifier.select(0, rank, accs[rank]).indices.tolist())
        assert len(union) == sparsifier.global_k

    def test_only_leader_pays_selection_cost(self, small_layout, rng):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(4)]
        sparsifier.coordinate(2, accs)
        leader = sparsifier.leader_of(2)
        for rank in range(4):
            result = sparsifier.select(2, rank, accs[rank])
            if rank == leader:
                assert result.analytic_cost > 0
            else:
                assert result.analytic_cost == 0.0

    def test_broadcast_recorded_when_backend_given(self, small_layout, rng):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 2)
        backend = SimulatedBackend(2)
        accs = [rng.standard_normal(small_layout.total_size) for _ in range(2)]
        sparsifier.coordinate(0, accs, backend)
        assert backend.meter.call_count(op="broadcast") == 1

    def test_non_leader_without_coordinate_raises(self, small_layout, small_acc):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        with pytest.raises(RuntimeError):
            sparsifier.select(0, 1, small_acc)

    def test_leader_standalone_fallback(self, small_layout, small_acc):
        sparsifier = CLTKSparsifier(0.1)
        sparsifier.setup(small_layout, 4)
        result = sparsifier.select(0, 0, small_acc)  # rank 0 is the leader of iteration 0
        assert result.k_selected == sparsifier.global_k


class TestHardThreshold:
    def test_fixed_threshold_selection(self, small_layout):
        sparsifier = HardThresholdSparsifier(0.1, threshold=1.0)
        sparsifier.setup(small_layout, 2)
        acc = np.array([0.5, -2.0, 1.5, 0.1] * (small_layout.total_size // 4 + 1))[: small_layout.total_size]
        result = sparsifier.select(0, 0, acc)
        assert (np.abs(acc[result.indices]) >= 1.0).all()
        assert result.k_selected == int((np.abs(acc) >= 1.0).sum())

    def test_auto_calibration_targets_density(self, small_layout, small_acc):
        sparsifier = HardThresholdSparsifier(0.1)
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        # First-iteration calibration should select approximately k entries.
        assert abs(result.k_selected - sparsifier.global_k) <= max(2, 0.1 * sparsifier.global_k)

    def test_stale_threshold_changes_selection_count(self, small_layout, small_acc):
        """As gradients shrink, a fixed threshold selects fewer entries -- the
        unpredictable-density weakness of Table 1."""
        sparsifier = HardThresholdSparsifier(0.1)
        sparsifier.setup(small_layout, 2)
        first = sparsifier.select(0, 0, small_acc)
        shrunk = sparsifier.select(1, 0, small_acc * 0.1)
        assert shrunk.k_selected < first.k_selected

    def test_threshold_persists_after_calibration(self, small_layout, small_acc):
        sparsifier = HardThresholdSparsifier(0.1)
        sparsifier.setup(small_layout, 2)
        sparsifier.select(0, 0, small_acc)
        threshold_after_first = sparsifier.threshold
        sparsifier.select(1, 0, small_acc * 2.0)
        assert sparsifier.threshold == threshold_after_first


class TestSIDCo:
    def test_threshold_estimation_is_positive(self, small_layout, small_acc):
        sparsifier = SIDCoSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        threshold = sparsifier.estimate_threshold(np.abs(small_acc))
        assert threshold > 0

    def test_selection_count_is_in_the_right_ballpark(self, small_layout, rng):
        """For exponential-ish magnitudes the fitted threshold should select
        within a factor ~3 of the target k (SIDCo's accuracy claim)."""
        sparsifier = SIDCoSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        acc = rng.exponential(scale=1.0, size=small_layout.total_size) * rng.choice([-1, 1], small_layout.total_size)
        result = sparsifier.select(0, 0, acc)
        k = sparsifier.global_k
        assert k / 3 <= result.k_selected <= 3 * k

    def test_more_stages_refine_threshold(self, small_layout, rng):
        acc = rng.exponential(scale=1.0, size=small_layout.total_size)
        single = SIDCoSparsifier(0.05, n_stages=1)
        multi = SIDCoSparsifier(0.05, n_stages=4)
        single.setup(small_layout, 2)
        multi.setup(small_layout, 2)
        assert single.estimate_threshold(acc) != multi.estimate_threshold(acc)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            SIDCoSparsifier(0.1, n_stages=0)

    def test_overhead_reported_separately(self, small_layout, small_acc):
        sparsifier = SIDCoSparsifier(0.05)
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        assert "overhead_seconds" in result.info
        assert result.info["overhead_seconds"] >= 0


class TestRandomK:
    def test_selects_k_unique_indices(self, small_layout, small_acc):
        sparsifier = RandomKSparsifier(0.1)
        sparsifier.setup(small_layout, 2, seed=3)
        result = sparsifier.select(0, 0, small_acc)
        assert result.k_selected == sparsifier.global_k
        assert np.unique(result.indices).size == result.k_selected

    def test_reproducible_per_iteration_and_rank(self, small_layout, small_acc):
        a = RandomKSparsifier(0.1)
        b = RandomKSparsifier(0.1)
        a.setup(small_layout, 2, seed=3)
        b.setup(small_layout, 2, seed=3)
        np.testing.assert_array_equal(
            a.select(5, 1, small_acc).indices, b.select(5, 1, small_acc).indices
        )

    def test_different_ranks_select_differently(self, small_layout, small_acc):
        sparsifier = RandomKSparsifier(0.1)
        sparsifier.setup(small_layout, 2, seed=3)
        idx0 = sparsifier.select(0, 0, small_acc).indices
        idx1 = sparsifier.select(0, 1, small_acc).indices
        assert not np.array_equal(np.sort(idx0), np.sort(idx1))


class TestDense:
    def test_selects_everything(self, small_layout, small_acc):
        sparsifier = DenseSparsifier()
        sparsifier.setup(small_layout, 2)
        result = sparsifier.select(0, 0, small_acc)
        assert result.k_selected == small_layout.total_size
        np.testing.assert_array_equal(np.sort(result.indices), np.arange(small_layout.total_size))

    def test_density_forced_to_one(self):
        assert DenseSparsifier(0.3).density == 1.0
