"""The lint framework: rules, pragmas, CLI surface and project cleanliness.

Fixture modules under ``tests/fixtures/lint/`` each seed one violation
class; the tests assert every fixture triggers exactly its rule, that
the pragma vocabulary suppresses it, and that the semi-static rules
(plugin contracts, metering parity, API drift) both pass on the real
project and catch injected violations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import run_lint
from repro.devtools.core import DIRECTIVES, load_module, parse_pragmas
from repro.devtools.parity import check_metering_parity
from repro.devtools.runner import ALL_RULE_NAMES, SEMISTATIC_RULES, lint_main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def rules_fired(paths, **kwargs):
    report = run_lint(paths=[Path(p) for p in paths], **kwargs)
    return report, {f.rule for f in report.findings}


# ---------------------------------------------------------------------- #
# Per-rule fixtures: each triggers exactly its rule.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "fixture, rule, expected_lines",
    [
        ("det_wallclock.py", "wallclock", 5),
        ("det_unseeded.py", "unseeded-rng", 6),
        ("det_hostenv.py", "hostenv", 2),
        ("exc_silent.py", "broad-except", 4),
        ("pragma_bad.py", "pragma", 3),
    ],
)
def test_fixture_triggers_exactly_its_rule(fixture, rule, expected_lines):
    report, fired = rules_fired([FIXTURES / fixture])
    assert fired == {rule}
    assert len(report.findings) == expected_lines
    assert not report.ok


def test_wallclock_fixture_flags_every_flavour():
    report, _ = rules_fired([FIXTURES / "det_wallclock.py"])
    flagged = {f.line for f in report.findings}
    text = (FIXTURES / "det_wallclock.py").read_text()
    for marker in ("time.time()", "now()", "datetime.now()", "utcnow()", "date.today()"):
        assert marker in text
    # perf_counter/monotonic (the allowed_span function) must not fire.
    allowed_line = next(
        i for i, line in enumerate(text.splitlines(), 1) if "perf_counter" in line
    )
    assert allowed_line not in flagged


def test_discipline_accepts_reraise_record_and_narrow():
    report, _ = rules_fired([FIXTURES / "exc_silent.py"])
    text = (FIXTURES / "exc_silent.py").read_text().splitlines()
    for lineno in (f.line for f in report.findings):
        assert "fine" not in text[lineno - 1]


def test_pragmas_suppress_every_rule():
    report, fired = rules_fired([FIXTURES / "pragma_ok.py"])
    assert report.ok, [f.format() for f in report.findings]
    assert fired == set()


def test_pragma_reason_is_required_and_vocabulary_closed():
    report, _ = rules_fired([FIXTURES / "pragma_bad.py"])
    messages = " ".join(f.message for f in report.findings)
    assert "unknown pragma directive" in messages
    assert "non-empty reason" in messages
    assert "malformed pragma" in messages


def test_pragma_parser_details():
    pragmas, errors = parse_pragmas(
        "x = 1  # repro: allow-wallclock(trailing)\n"
        "# repro: isolation(standalone)\n"
        "y = 2\n"
    )
    assert not errors
    assert [(p.directive, p.standalone) for p in pragmas] == [
        ("allow-wallclock", False),
        ("isolation", True),
    ]
    module = load_module(FIXTURES / "pragma_ok.py")
    # A standalone pragma governs the next line, a trailing one its own.
    assert any(p.standalone for p in module.pragmas)
    assert any(not p.standalone for p in module.pragmas)


def test_directive_vocabulary_is_closed():
    assert set(DIRECTIVES) == {
        "allow-wallclock",
        "allow-unseeded",
        "allow-hostenv",
        "isolation",
    }


# ---------------------------------------------------------------------- #
# Semi-static rules.
# ---------------------------------------------------------------------- #
def test_metering_parity_catches_missing_and_mispriced_ops():
    findings = check_metering_parity(
        simulated_path=FIXTURES / "parity_sim.py",
        multiprocess_path=FIXTURES / "parity_mp.py",
    )
    messages = " ".join(f.message for f in findings)
    assert len(findings) == 2
    assert all(f.rule == "metering-parity" for f in findings)
    assert "push" in messages  # the missing op
    assert "allgather" in messages and "allreduce" in messages  # the mispriced op


def test_metering_parity_clean_on_real_backends():
    assert check_metering_parity() == []


def test_plugin_contracts_validate_all_seven_kinds():
    from repro.devtools.contracts import check_plugin_contracts
    from repro.plugins.registry import _BUILTIN_MODULES, component_kinds, load_builtin_components

    load_builtin_components()
    assert len(_BUILTIN_MODULES) == 7
    assert sorted(_BUILTIN_MODULES) == component_kinds()
    assert check_plugin_contracts() == []


def test_plugin_contracts_catch_bad_kwarg_and_capability():
    from repro.devtools.contracts import check_plugin_contracts
    from repro.plugins.registry import REGISTRY
    from repro.plugins.spec import ComponentSpec, Kwarg

    def builder(n_byzantine=0):
        return None

    spec = ComponentSpec(
        kind="aggregator",
        name="lint_test_bogus",
        builder=builder,
        description="deliberately broken registration",
        kwargs=(Kwarg("no_such_param", "int", None, "not in the signature"),),
        capabilities={"definitely_not_a_capability": True},
    )
    REGISTRY.register(spec)
    try:
        findings = check_plugin_contracts()
    finally:
        REGISTRY.unregister("aggregator", "lint_test_bogus")
    messages = [f.message for f in findings]
    assert any("no_such_param" in m for m in messages)
    assert any("definitely_not_a_capability" in m for m in messages)
    assert check_plugin_contracts() == []


def test_capability_vocabulary_covers_every_declared_flag():
    from repro.plugins.capabilities import CAPABILITY_VOCABULARY
    from repro.plugins.registry import (
        available_components,
        component_kinds,
        get_component,
        load_builtin_components,
    )

    load_builtin_components()
    declared = {
        flag
        for kind in component_kinds()
        for name in available_components(kind)
        for flag in get_component(kind, name).capabilities
    }
    assert declared <= set(CAPABILITY_VOCABULARY)


def test_api_drift_clean_and_catches_stale_snapshot(tmp_path):
    from repro.devtools.api_drift import check_api_drift

    assert check_api_drift() == []

    stale = tmp_path / "api_surface.json"
    stale.write_text(json.dumps({"api_all": ["nothing"], "components": {}}))
    findings = check_api_drift(fixture_path=stale)
    assert {f.rule for f in findings} == {"api-drift"}
    assert len(findings) == 2  # api_all and components both diverge

    missing = check_api_drift(fixture_path=tmp_path / "no_such.json")
    assert any("snapshot missing" in f.message for f in missing)


# ---------------------------------------------------------------------- #
# Driver and CLI surface.
# ---------------------------------------------------------------------- #
def test_default_scan_is_clean():
    report = run_lint()
    assert report.ok, "\n".join(f.format() for f in report.findings)
    assert report.files_scanned > 100
    assert set(SEMISTATIC_RULES) <= set(report.rules_run)


def test_explicit_paths_skip_semistatic_rules():
    report, _ = rules_fired([FIXTURES / "pragma_ok.py"])
    assert not set(SEMISTATIC_RULES) & set(report.rules_run)


def test_rule_filter():
    report, fired = rules_fired([FIXTURES / "det_wallclock.py"], rules=["broad-except"])
    assert fired == set()
    report, fired = rules_fired([FIXTURES / "det_wallclock.py"], rules=["wallclock"])
    assert fired == {"wallclock"}


def test_lint_main_exit_codes_and_text_output(capsys):
    assert lint_main([str(FIXTURES / "pragma_ok.py")]) == 0
    assert lint_main([str(FIXTURES / "det_wallclock.py")]) == 1
    out = capsys.readouterr().out
    assert "det_wallclock.py:" in out and " wallclock " in out
    assert lint_main(["--rules", "no-such-rule"]) == 2
    assert lint_main(["/no/such/path.py"]) == 2


def test_lint_json_schema(capsys):
    assert lint_main(["--json", str(FIXTURES / "exc_silent.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"ok", "files_scanned", "rules", "findings"}
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "rule", "message"}
        assert finding["rule"] == "broad-except"
        assert isinstance(finding["line"], int)


def test_cli_verb_dispatch(capsys):
    from repro.cli import main

    assert main(["lint", str(FIXTURES / "pragma_ok.py")]) == 0
    capsys.readouterr()
    assert main(["lint", "--json", str(FIXTURES / "det_hostenv.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "hostenv"
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ALL_RULE_NAMES:
        assert name in out
    for directive in DIRECTIVES:
        assert directive in out
