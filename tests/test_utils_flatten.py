"""Tests for flatten/unflatten of named arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.flatten import flatten_arrays, unflatten_vector


def make_named(rng, shapes):
    return [(f"layer{i}", rng.standard_normal(shape)) for i, shape in enumerate(shapes)]


class TestFlattenArrays:
    def test_total_size_is_sum(self):
        rng = np.random.default_rng(0)
        named = make_named(rng, [(3, 4), (5,), (2, 2, 2)])
        flat, spec = flatten_arrays(named)
        assert flat.size == 12 + 5 + 8
        assert spec.total_size == flat.size

    def test_order_preserved(self):
        named = [("a", np.array([1.0, 2.0])), ("b", np.array([3.0]))]
        flat, spec = flatten_arrays(named)
        np.testing.assert_array_equal(flat, [1.0, 2.0, 3.0])
        assert spec.names == ("a", "b")

    def test_offsets_are_contiguous(self):
        rng = np.random.default_rng(1)
        named = make_named(rng, [(4,), (3, 3), (2,)])
        _, spec = flatten_arrays(named)
        for i in range(1, spec.n_arrays):
            assert spec.offsets[i] == spec.offsets[i - 1] + spec.sizes[i - 1]

    def test_empty_input(self):
        flat, spec = flatten_arrays([])
        assert flat.size == 0
        assert spec.total_size == 0

    def test_dtype_conversion(self):
        named = [("a", np.array([1, 2], dtype=np.int32))]
        flat, _ = flatten_arrays(named, dtype=np.float32)
        assert flat.dtype == np.float32


class TestUnflatten:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        named = make_named(rng, [(3, 2), (7,), (1, 4)])
        flat, spec = flatten_arrays(named)
        restored = unflatten_vector(flat, spec)
        for name, original in named:
            np.testing.assert_allclose(restored[name], original)
            assert restored[name].shape == original.shape

    def test_wrong_length_raises(self):
        rng = np.random.default_rng(3)
        flat, spec = flatten_arrays(make_named(rng, [(3,)]))
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(spec.total_size + 1), spec)

    def test_returned_arrays_are_copies(self):
        named = [("a", np.array([1.0, 2.0]))]
        flat, spec = flatten_arrays(named)
        restored = unflatten_vector(flat, spec)
        restored["a"][0] = 99.0
        assert flat[0] == 1.0


class TestFlatSpec:
    def test_slice_of(self):
        rng = np.random.default_rng(4)
        named = make_named(rng, [(4,), (6,)])
        flat, spec = flatten_arrays(named)
        np.testing.assert_allclose(flat[spec.slice_of("layer1")], named[1][1].reshape(-1))

    def test_slice_of_unknown_name(self):
        _, spec = flatten_arrays([("a", np.zeros(3))])
        with pytest.raises(KeyError):
            spec.slice_of("missing")

    def test_boundaries(self):
        _, spec = flatten_arrays([("a", np.zeros(3)), ("b", np.zeros(5))])
        assert spec.boundaries() == [(0, 3), (3, 8)]

    def test_owner_of(self):
        _, spec = flatten_arrays([("a", np.zeros(3)), ("b", np.zeros(5))])
        assert spec.owner_of(0) == "a"
        assert spec.owner_of(2) == "a"
        assert spec.owner_of(3) == "b"
        assert spec.owner_of(7) == "b"

    def test_owner_of_out_of_range(self):
        _, spec = flatten_arrays([("a", np.zeros(3))])
        with pytest.raises(IndexError):
            spec.owner_of(3)
        with pytest.raises(IndexError):
            spec.owner_of(-1)


@given(
    sizes=st.lists(st.integers(1, 20), min_size=1, max_size=10),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_flatten_unflatten_roundtrip_property(sizes, seed):
    """Flatten followed by unflatten recovers every array exactly."""
    rng = np.random.default_rng(seed)
    named = [(f"p{i}", rng.standard_normal(size)) for i, size in enumerate(sizes)]
    flat, spec = flatten_arrays(named)
    assert flat.size == sum(sizes)
    restored = unflatten_vector(flat, spec)
    for name, original in named:
        np.testing.assert_allclose(restored[name], original)
