"""Wall-clock audit: spec keys and compared metrics are timestamp-free.

The three sanctioned ``time.time()`` sites (the ledger's audit stamp,
``RunResult.to_ledger_entry``'s ``ts`` field and the run logger's folder
stamp) carry ``# repro: allow-wallclock`` pragmas.  These tests pin down
*why* those pragmas are sound: no wall-clock value ever reaches a spec
key, a cache address or the metric view the regression sentinel
compares, so two executions of the same spec at different times stay
bit-comparable.
"""

from __future__ import annotations

import time

import pytest

from repro.api import RunSpec
from repro.api.result import RunResult
from repro.observability.regress import comparable_metrics
from repro.sweep.cache import spec_key


@pytest.fixture()
def result() -> RunResult:
    spec = RunSpec(workload="lm", scale="smoke", seed=3).resolve()
    return RunResult.from_dict(
        {
            "spec": spec.to_dict(),
            "final_metrics": {"val_loss": 1.25, "val_acc": 0.5},
            "mean_density": 0.1,
            "iterations_run": 8,
            "epochs_run": 2,
            "estimated_wallclock": 4.0,
            "traffic": {"total_sent_elements": 1024, "calls": 16},
        }
    )


def test_spec_key_is_invariant_under_wallclock(monkeypatch, result):
    keys = []
    for fake_now in (1_000.0, 2_000_000.0):
        monkeypatch.setattr(time, "time", lambda now=fake_now: now)
        keys.append(spec_key(result.spec))
    assert keys[0] == keys[1]
    assert len(keys[0]) == 64  # sha256 hex -- a content address, not a stamp


def test_ledger_entries_at_different_times_differ_only_in_audit_fields(
    monkeypatch, result
):
    entries = []
    for fake_now, host in ((1_000.0, 0.5), (2_000_000.0, 99.5)):
        monkeypatch.setattr(time, "time", lambda now=fake_now: now)
        entries.append(result.to_ledger_entry(host_seconds=host))
    a, b = entries
    assert a["ts"] != b["ts"]
    assert a["host_seconds"] != b["host_seconds"]
    stripped_a = {k: v for k, v in a.items() if k not in ("ts", "host_seconds")}
    stripped_b = {k: v for k, v in b.items() if k not in ("ts", "host_seconds")}
    assert stripped_a == stripped_b


def test_comparable_metrics_are_timestamp_free(monkeypatch, result):
    views = []
    for fake_now, host in ((1_000.0, 0.5), (2_000_000.0, 99.5)):
        monkeypatch.setattr(time, "time", lambda now=fake_now: now)
        views.append(comparable_metrics(result.to_ledger_entry(host_seconds=host)))
    a, b = views
    assert a == b
    assert a  # non-empty: the sentinel actually has something to compare
    for name in a:
        assert "ts" != name and "host" not in name, name


def test_spec_key_payload_carries_no_clock_or_host_fields(result):
    # The key is derived from the resolved spec dict only; assert the spec
    # dict itself has no clock/host material for the hash to pick up.
    payload = result.spec.to_dict()

    def walk(node, path=""):
        if isinstance(node, dict):
            for key, value in node.items():
                assert key not in ("ts", "timestamp", "host_seconds", "created"), path
                walk(value, f"{path}.{key}")

    walk(payload)
