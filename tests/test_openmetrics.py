"""Tests for the OpenMetrics exposition and the live round monitor."""

import io
import json

import pytest

from repro.api import RunSpec, Session
from repro.observability import (
    LiveMonitor,
    MetricsRegistry,
    parse_openmetrics,
    render_openmetrics,
)


def tiny_spec(**overrides) -> RunSpec:
    base = {
        "workload": "lm",
        "cluster": {"n_workers": 2},
        "optimizer": {"epochs": 1, "max_iterations_per_epoch": 3},
        "compression": {"sparsifier": "deft", "density": 0.05},
    }
    data = dict(base)
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(data.get(key), dict):
            merged = dict(data[key])
            merged.update(value)
            data[key] = merged
        else:
            data[key] = value
    return RunSpec.from_dict(data)


def sample_snapshot() -> dict:
    registry = MetricsRegistry()
    registry.counter("iterations").inc(4)
    registry.counter("cache", outcome="hit").inc(2)
    registry.counter("cache", outcome="miss").inc(1)
    registry.gauge("virtual_time_seconds").set(1.5)
    hist = registry.histogram("latency_seconds", source="run")
    for value in (0.1, 0.2, 0.3, 0.4):
        hist.observe(value)
    return registry.snapshot()


# ---------------------------------------------------------------------- #
class TestRender:
    def test_ends_with_eof(self):
        text = render_openmetrics(sample_snapshot())
        assert text.endswith("# EOF\n")

    def test_counters_normalised_to_total(self):
        text = render_openmetrics(sample_snapshot())
        assert "# TYPE iterations counter" in text
        assert "iterations_total 4.0" in text

    def test_labelled_counters_share_one_family(self):
        text = render_openmetrics(sample_snapshot())
        assert text.count("# TYPE cache counter") == 1
        assert 'cache_total{outcome="hit"} 2.0' in text
        assert 'cache_total{outcome="miss"} 1.0' in text

    def test_histogram_as_summary_with_quantiles(self):
        text = render_openmetrics(sample_snapshot())
        assert "# TYPE latency_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.99"' in text
        assert 'latency_seconds_count{source="run"} 4.0' in text

    def test_prefix_prepended(self):
        text = render_openmetrics(sample_snapshot(), prefix="repro_")
        assert "repro_iterations_total 4.0" in text
        assert "# TYPE repro_latency_seconds summary" in text

    def test_empty_snapshot_is_just_eof(self):
        assert render_openmetrics({}) == "# EOF\n"


class TestParseRoundTrip:
    def test_round_trip_values(self):
        snapshot = sample_snapshot()
        parsed = parse_openmetrics(render_openmetrics(snapshot))
        assert parsed.families["iterations"] == "counter"
        assert parsed.families["virtual_time_seconds"] == "gauge"
        assert parsed.families["latency_seconds"] == "summary"
        assert parsed.value("iterations_total") == 4.0
        assert parsed.value("cache_total", outcome="hit") == 2.0
        assert parsed.value("virtual_time_seconds") == 1.5
        assert parsed.value(
            "latency_seconds_count", source="run"
        ) == 4.0
        # sum = mean * count, exact for the reservoir-backed histogram
        assert parsed.value("latency_seconds_sum", source="run") == pytest.approx(1.0)
        assert parsed.value(
            "latency_seconds", source="run", quantile="0.5"
        ) == pytest.approx(0.25)

    def test_label_escaping_round_trips(self):
        snapshot = {
            "gauges": {'g{path=a\\b,msg=x"y}': 1.0},
        }
        parsed = parse_openmetrics(render_openmetrics(snapshot))
        assert parsed.value("g", path="a\\b", msg='x"y') == 1.0

    def test_missing_eof_raises(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("iterations_total 4.0\n")

    def test_content_after_eof_raises(self):
        with pytest.raises(ValueError, match="after"):
            parse_openmetrics("# EOF\niterations_total 4.0\n")

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("!!! not a line\n# EOF\n")

    def test_value_returns_none_for_unknown(self):
        parsed = parse_openmetrics(render_openmetrics(sample_snapshot()))
        assert parsed.value("nope_total") is None
        assert parsed.value("iterations_total", extra="label") is None


class TestRunSnapshotRenders:
    def test_real_run_snapshot_parses(self):
        spec = tiny_spec(observability={"metrics": True})
        result = Session().run(spec)
        snapshot = result.observability["metrics"]
        parsed = parse_openmetrics(render_openmetrics(snapshot))
        assert parsed.value("iterations_total") == float(result.iterations_run)


# ---------------------------------------------------------------------- #
class TestLiveMonitor:
    def test_one_line_per_round(self):
        stream = io.StringIO()
        monitor = LiveMonitor(stream)
        result = Session().run(tiny_spec(), hooks=monitor.hooks())
        lines = stream.getvalue().splitlines()
        assert len(lines) == result.iterations_run
        assert monitor.rounds == result.iterations_run
        records = [json.loads(line) for line in lines]
        assert [r["round"] for r in records] == list(range(len(records)))
        assert all(r["schedule"] == "lock_step" for r in records)
        assert all(r["staleness_p95"] is None for r in records)
        # Virtual time advances monotonically round over round.
        times = [r["virtual_time"] for r in records]
        assert times == sorted(times)
        assert records[-1]["loss"] == pytest.approx(
            result.series("loss").values[-1]
        )

    def test_async_bsp_reports_staleness(self):
        stream = io.StringIO()
        monitor = LiveMonitor(stream)
        spec = tiny_spec(
            cluster={"n_workers": 4, "straggler_profile": "lognormal"},
            execution={"model": "async_bsp"},
        )
        Session().run(spec, hooks=monitor.hooks())
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert records
        assert all(r["schedule"] == "async_bsp" for r in records)
        assert all(isinstance(r["staleness_p95"], float) for r in records)

    def test_monitor_does_not_perturb_training(self):
        plain = Session().run(tiny_spec())
        monitored = Session().run(
            tiny_spec(), hooks=LiveMonitor(io.StringIO()).hooks()
        )
        assert plain.final_metrics == monitored.final_metrics
        assert plain.estimated_wallclock == monitored.estimated_wallclock

    def test_hook_sequences_accepted(self):
        seen = []
        Session().run(
            tiny_spec(),
            hooks={"round_complete": [seen.append, lambda p: None]},
        )
        assert len(seen) == 3
