"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deft" in out
        assert "fig09" in out
        assert "Computer vision" in out

    def test_list_prints_aggregators_and_attacks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "krum" in out
        assert "centered_clipping" in out
        assert "sign_flip" in out
        assert "robustness" in out

    def test_list_prints_execution_models_and_profiles(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "async_bsp" in out
        assert "local_sgd" in out
        assert "elastic" in out
        assert "lognormal" in out
        assert "staleness" in out


class TestListJson:
    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["components"]) == {
            "sparsifier", "aggregator", "attack", "backend", "execution",
            "model", "topology",
        }
        names = [entry["name"] for entry in payload["components"]["sparsifier"]]
        assert "deft" in names
        assert "robustness" in payload["experiments"]
        assert payload["straggler_profiles"] == ["uniform", "lognormal", "straggler"]

    def test_list_json_carries_schema_and_capabilities(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        async_bsp = next(
            e for e in payload["components"]["execution"] if e["name"] == "async_bsp"
        )
        assert async_bsp["capabilities"]["default_aggregator"] == "staleness_weighted_mean"
        dgc = next(e for e in payload["components"]["sparsifier"] if e["name"] == "dgc")
        assert {kw["name"] for kw in dgc["kwargs"]} == {
            "sample_ratio", "refine", "overshoot_tolerance",
        }


class TestDescribe:
    def test_describe_by_kind_and_name(self, capsys):
        assert main(["describe", "sparsifier/deft"]) == 0
        out = capsys.readouterr().out
        assert "sparsifier/deft" in out
        assert "robust_norms" in out
        assert "supports_robust_norms" in out

    def test_describe_bare_name(self, capsys):
        assert main(["describe", "krum"]) == 0
        assert "aggregator/krum" in capsys.readouterr().out

    def test_describe_json(self, capsys):
        assert main(["describe", "attack/alie", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["capabilities"]["colluding"] is True

    def test_describe_unknown_fails_cleanly(self, capsys):
        assert main(["describe", "nonexistent"]) == 2
        assert "unknown component" in capsys.readouterr().err

    def test_describe_ambiguous_name_fails_cleanly(self, capsys):
        # "mean" exists only as an aggregator, so use an artificial clash is
        # unnecessary: assert the unambiguous path works and an unknown kind
        # fails with the kind list.
        assert main(["describe", "nokind/mean"]) == 2
        assert "unknown component kind" in capsys.readouterr().err


class TestTrain:
    def test_train_smoke(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean actual density" in out
        assert "final perplexity" in out

    def test_invalid_sparsifier_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--sparsifier", "nonexistent"])

    def test_train_with_robustness_flags(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "4", "--epochs", "1", "--scale", "smoke",
            "--aggregator", "krum", "--attack", "sign_flip", "--n-byzantine", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregator=krum" in out
        assert "attack=sign_flip" in out

    def test_invalid_aggregator_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--aggregator", "nonexistent"])

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--attack", "nonexistent"])

    def test_invalid_robustness_config_fails_cleanly(self, capsys):
        code = main([
            "train", "--workload", "lm", "--workers", "4",
            "--attack", "sign_flip", "--n-byzantine", "4", "--epochs", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "benign worker" in err

    def test_negative_byzantine_fails_cleanly(self, capsys):
        """Config-construction-time validation, not a downstream aggregator error."""
        code = main([
            "train", "--workload", "lm", "--workers", "4",
            "--n-byzantine", "-1", "--epochs", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "non-negative" in err

    def test_run_alias_with_execution_flags(self, capsys):
        code = main([
            "run", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--scale", "smoke",
            "--execution", "async_bsp", "--straggler-profile", "lognormal",
            "--max-staleness", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution=async_bsp" in out
        assert "stragglers=lognormal" in out
        assert "estimated wall-clock" in out

    def test_train_local_sgd(self, capsys):
        code = main([
            "train", "--workload", "lm", "--density", "0.05", "--workers", "2",
            "--epochs", "1", "--execution", "local_sgd", "--local-steps", "2",
        ])
        assert code == 0
        assert "execution=local_sgd" in capsys.readouterr().out

    def test_invalid_execution_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--execution", "nonexistent"])

    def test_invalid_straggler_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--straggler-profile", "nonexistent"])

    def test_robust_norms_flag(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--robust-norms",
        ])
        assert code == 0

    def test_schema_generated_component_args(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "dgc", "--density", "0.05",
            "--workers", "2", "--epochs", "1",
            "--sparsifier-arg", "sample_ratio=0.3", "--sparsifier-arg", "refine=false",
        ])
        assert code == 0
        assert "mean actual density" in capsys.readouterr().out

    def test_unknown_component_arg_fails_cleanly(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "dgc", "--epochs", "1",
            "--sparsifier-arg", "bogus=1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "accepted" in err

    def test_malformed_component_arg_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--sparsifier-arg", "noequals"])

    def test_aggregator_arg_coerced(self, capsys):
        code = main([
            "train", "--workload", "lm", "--density", "0.05", "--workers", "4",
            "--epochs", "1", "--aggregator", "trimmed_mean",
            "--aggregator-arg", "trim=1",
        ])
        assert code == 0
        assert "aggregator=trimmed_mean" in capsys.readouterr().out

    def test_aggregator_arg_coerced_against_execution_default(self, capsys):
        """With --aggregator unset, kwargs must validate against the
        execution model's default rule (staleness_weighted_mean under
        async_bsp accepts gamma=), not against 'mean'."""
        code = main([
            "train", "--workload", "lm", "--density", "0.05", "--workers", "2",
            "--epochs", "1", "--execution", "async_bsp",
            "--aggregator-arg", "gamma=0.5",
        ])
        assert code == 0
        assert "execution=async_bsp" in capsys.readouterr().out

    def test_robust_norms_requires_deft(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "topk", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--robust-norms",
        ])
        assert code == 2
        assert "robust-norms" in capsys.readouterr().err


class TestExperiment:
    def test_experiment_registry_covers_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig01", "table1", "table2", "fig03", "fig04", "fig05",
            "fig06", "fig07", "fig08", "fig09", "fig10", "robustness",
            "staleness", "placement",
        }

    def test_experiment_fig09(self, capsys):
        assert main(["experiment", "fig09", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "workers" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestNoCommand:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()
