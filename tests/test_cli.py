"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deft" in out
        assert "fig09" in out
        assert "Computer vision" in out

    def test_list_prints_aggregators_and_attacks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "krum" in out
        assert "centered_clipping" in out
        assert "sign_flip" in out
        assert "robustness" in out

    def test_list_prints_execution_models_and_profiles(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "async_bsp" in out
        assert "local_sgd" in out
        assert "elastic" in out
        assert "lognormal" in out
        assert "staleness" in out


class TestTrain:
    def test_train_smoke(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean actual density" in out
        assert "final perplexity" in out

    def test_invalid_sparsifier_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--sparsifier", "nonexistent"])

    def test_train_with_robustness_flags(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "4", "--epochs", "1", "--scale", "smoke",
            "--aggregator", "krum", "--attack", "sign_flip", "--n-byzantine", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregator=krum" in out
        assert "attack=sign_flip" in out

    def test_invalid_aggregator_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--aggregator", "nonexistent"])

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--attack", "nonexistent"])

    def test_invalid_robustness_config_fails_cleanly(self, capsys):
        code = main([
            "train", "--workload", "lm", "--workers", "4",
            "--attack", "sign_flip", "--n-byzantine", "4", "--epochs", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "benign worker" in err

    def test_negative_byzantine_fails_cleanly(self, capsys):
        """Config-construction-time validation, not a downstream aggregator error."""
        code = main([
            "train", "--workload", "lm", "--workers", "4",
            "--n-byzantine", "-1", "--epochs", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "non-negative" in err

    def test_run_alias_with_execution_flags(self, capsys):
        code = main([
            "run", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--scale", "smoke",
            "--execution", "async_bsp", "--straggler-profile", "lognormal",
            "--max-staleness", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution=async_bsp" in out
        assert "stragglers=lognormal" in out
        assert "estimated wall-clock" in out

    def test_train_local_sgd(self, capsys):
        code = main([
            "train", "--workload", "lm", "--density", "0.05", "--workers", "2",
            "--epochs", "1", "--execution", "local_sgd", "--local-steps", "2",
        ])
        assert code == 0
        assert "execution=local_sgd" in capsys.readouterr().out

    def test_invalid_execution_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--execution", "nonexistent"])

    def test_invalid_straggler_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--straggler-profile", "nonexistent"])

    def test_robust_norms_flag(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--robust-norms",
        ])
        assert code == 0

    def test_robust_norms_requires_deft(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "topk", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--robust-norms",
        ])
        assert code == 2
        assert "robust-norms" in capsys.readouterr().err


class TestExperiment:
    def test_experiment_registry_covers_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig01", "table1", "table2", "fig03", "fig04", "fig05",
            "fig06", "fig07", "fig08", "fig09", "fig10", "robustness",
            "staleness",
        }

    def test_experiment_fig09(self, capsys):
        assert main(["experiment", "fig09", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "workers" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestNoCommand:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()
