"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deft" in out
        assert "fig09" in out
        assert "Computer vision" in out


class TestTrain:
    def test_train_smoke(self, capsys):
        code = main([
            "train", "--workload", "lm", "--sparsifier", "deft", "--density", "0.05",
            "--workers", "2", "--epochs", "1", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean actual density" in out
        assert "final perplexity" in out

    def test_invalid_sparsifier_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--sparsifier", "nonexistent"])


class TestExperiment:
    def test_experiment_registry_covers_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig01", "table1", "table2", "fig03", "fig04", "fig05",
            "fig06", "fig07", "fig08", "fig09", "fig10",
        }

    def test_experiment_fig09(self, capsys):
        assert main(["experiment", "fig09", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "workers" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestNoCommand:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()
