"""Tests for the run logger."""

import json

import pytest

from repro.utils.logging import RunLogger, ScalarSeries, merge_series


class TestScalarSeries:
    def test_append_and_stats(self):
        series = ScalarSeries("loss")
        series.append(0, 2.0)
        series.append(1, 4.0)
        assert series.last() == 4.0
        assert series.mean() == 3.0
        assert series.max() == 4.0
        assert series.min() == 2.0
        assert len(series) == 2

    def test_empty_stats(self):
        series = ScalarSeries("empty")
        assert series.last() is None
        assert series.mean() == 0.0
        assert series.max() == 0.0
        assert series.min() == 0.0

    def test_percentile_interpolates(self):
        series = ScalarSeries("p")
        for step, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            series.append(step, value)
        assert series.percentile(0) == 1.0
        assert series.percentile(100) == 4.0
        assert series.percentile(50) == 2.5
        assert series.percentile(25) == 1.75

    def test_percentile_unordered_values(self):
        series = ScalarSeries("p")
        for step, value in enumerate([4.0, 1.0, 3.0, 2.0]):
            series.append(step, value)
        assert series.percentile(50) == 2.5

    def test_percentile_empty_series(self):
        assert ScalarSeries("empty").percentile(50) == 0.0

    def test_percentile_single_element(self):
        series = ScalarSeries("one")
        series.append(0, 7.0)
        for q in (0, 50, 95, 100):
            assert series.percentile(q) == 7.0

    def test_percentile_rejects_out_of_range(self):
        series = ScalarSeries("p")
        series.append(0, 1.0)
        with pytest.raises(ValueError):
            series.percentile(-1)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_summary_keys_and_values(self):
        series = ScalarSeries("s")
        for step, value in enumerate([1.0, 2.0, 3.0]):
            series.append(step, value)
        summary = series.summary()
        assert summary == {
            "count": 3,
            "mean": 2.0,
            "min": 1.0,
            "max": 3.0,
            "p50": 2.0,
            "p95": series.percentile(95),
            "p99": series.percentile(99),
        }

    def test_summary_empty_series(self):
        summary = ScalarSeries("empty").summary()
        assert summary == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_summary_single_element(self):
        series = ScalarSeries("one")
        series.append(0, 5.0)
        summary = series.summary()
        assert summary["count"] == 1
        assert summary["mean"] == summary["min"] == summary["max"] == 5.0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 5.0

    def test_summary_p99_between_p95_and_max(self):
        series = ScalarSeries("tail")
        for step in range(100):
            series.append(step, float(step))
        summary = series.summary()
        assert summary["p95"] <= summary["p99"] <= summary["max"]
        assert summary["p99"] == series.percentile(99)


class TestRunLogger:
    def test_log_scalar_creates_series(self):
        logger = RunLogger("run")
        logger.log_scalar("density", 0, 0.01)
        logger.log_scalar("density", 1, 0.02)
        assert logger.has_series("density")
        assert logger.series("density").values == [0.01, 0.02]

    def test_series_for_unknown_name_is_empty(self):
        logger = RunLogger("run")
        assert len(logger.series("missing")) == 0
        assert not logger.has_series("missing")

    def test_metadata(self):
        logger = RunLogger("run")
        logger.log_metadata(task="lm", workers=4)
        logger.log_metadata(workers=8)
        assert logger.metadata == {"task": "lm", "workers": 8}

    def test_series_names_sorted(self):
        logger = RunLogger("run")
        logger.log_scalar("b", 0, 1.0)
        logger.log_scalar("a", 0, 1.0)
        assert logger.series_names() == ["a", "b"]

    def test_roundtrip_dict(self):
        logger = RunLogger("exp")
        logger.log_metadata(alpha=1)
        logger.log_scalar("x", 0, 5.0)
        restored = RunLogger.from_dict(logger.to_dict())
        assert restored.run_name == "exp"
        assert restored.metadata == {"alpha": 1}
        assert restored.series("x").values == [5.0]

    def test_save_and_load_json(self, tmp_path):
        logger = RunLogger("disk")
        logger.log_scalar("err", 3, 1.5)
        path = logger.save_json(tmp_path / "run.json")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["run_name"] == "disk"
        restored = RunLogger.load_json(path)
        assert restored.series("err").steps == [3]

    def test_save_json_overwrites_atomically(self, tmp_path):
        path = tmp_path / "run.json"
        old = RunLogger("old")
        old.log_scalar("x", 0, 1.0)
        old.save_json(path)
        new = RunLogger("new")
        new.log_scalar("x", 0, 2.0)
        new.save_json(path)
        assert json.loads(path.read_text())["run_name"] == "new"
        # The temp file of the atomic write never lingers.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_save_json_failure_leaves_old_file_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "run.json"
        good = RunLogger("good")
        good.save_json(path)

        bad = RunLogger("bad")
        bad.log_metadata(unserialisable=object())  # json.dumps will raise
        with pytest.raises(TypeError):
            bad.save_json(path)
        # The previous file survives and no temp file is left behind.
        assert json.loads(path.read_text())["run_name"] == "good"
        assert list(tmp_path.glob("*.tmp")) == []


class TestMergeSeries:
    def test_merges_by_run_name(self):
        a = RunLogger("a")
        a.log_scalar("loss", 0, 1.0)
        b = RunLogger("b")
        b.log_scalar("loss", 0, 2.0)
        merged = merge_series([a, b], "loss")
        assert set(merged) == {"a", "b"}

    def test_duplicate_run_names_are_disambiguated(self):
        a = RunLogger("same")
        b = RunLogger("same")
        merged = merge_series([a, b], "loss")
        assert len(merged) == 2
