"""Tests for thread-parallel selection measurement."""

import numpy as np
import pytest

from repro.analysis.parallel import ParallelSelectionMeasurement, measure_parallel_selection
from repro.sparsifiers.base import GradientLayout


@pytest.fixture(scope="module")
def big_layout():
    return GradientLayout.from_named_shapes(
        [
            ("embedding.weight", (400, 128)),
            ("lstm.weight_ih", (512, 96)),
            ("lstm.weight_hh", (512, 128)),
            ("lstm.bias", (512,)),
            ("decoder.weight", (400, 128)),
            ("decoder.bias", (400,)),
        ]
    )


class TestMeasureParallelSelection:
    def test_returns_positive_timings(self, big_layout):
        flat = np.random.default_rng(0).standard_normal(big_layout.total_size)
        measurement = measure_parallel_selection(big_layout, flat, 0.01, n_workers=4, repeats=1)
        assert measurement.baseline_seconds > 0
        assert measurement.serial_seconds > 0
        assert measurement.parallel_seconds > 0
        assert measurement.n_workers == 4

    def test_speedup_properties(self):
        measurement = ParallelSelectionMeasurement(
            n_workers=4, baseline_seconds=1.0, serial_seconds=0.5, parallel_seconds=0.25
        )
        assert measurement.serial_speedup == pytest.approx(2.0)
        assert measurement.parallel_speedup == pytest.approx(4.0)

    def test_zero_parallel_time_gives_inf(self):
        measurement = ParallelSelectionMeasurement(4, 1.0, 0.0, 0.0)
        assert measurement.parallel_speedup == float("inf")
        assert measurement.serial_speedup == float("inf")

    def test_length_mismatch_rejected(self, big_layout):
        with pytest.raises(ValueError):
            measure_parallel_selection(big_layout, np.zeros(10), 0.01, n_workers=2)

    def test_serial_deft_selection_beats_full_topk_on_large_vector(self, big_layout):
        """Even without threads, per-layer selection over a large vector is no
        slower than one monolithic Top-k (the per-element work shrinks because
        each layer's k is tiny)."""
        flat = np.random.default_rng(1).standard_normal(big_layout.total_size)
        measurement = measure_parallel_selection(big_layout, flat, 0.01, n_workers=8, repeats=3)
        # Allow generous slack: the claim is "comparable or better", the
        # asymptotic win is covered by the analytic-cost tests.
        assert measurement.serial_seconds <= 3.0 * measurement.baseline_seconds
